"""Fast exponentiation: w-NAF scalar multiplication, multi-scalar
multiplication and fixed-base precomputation tables.

All routines are generic over the :class:`~repro.curves.weierstrass.FieldOps`
bundle, so the same code serves G1 (over F_p) and G2 (over F_p2).  Points are
Jacobian ``(X, Y, Z)`` triples exactly as in :mod:`repro.curves.weierstrass`;
the naive ``jac_scalar_mul`` there remains the correctness reference the
property tests compare against.

Why these three algorithms (T2 on this machine, seed numbers: Share-Sign
8.9 ms, robust Combine 213 ms — both dominated by naive double-and-add):

* **w-NAF single-scalar multiplication** — recoding a 254-bit scalar into
  width-``w`` non-adjacent form leaves ~254/(w+1) nonzero digits instead of
  ~127, so the generic multiply drops from 254 doublings + 127 additions to
  254 doublings + ~51 additions (w = 4) after a 7-addition table setup.
* **Straus (interleaved w-NAF) MSM** — a k-term product of exponentiations
  shares one run of 254 doublings across all terms; Combine's "Lagrange in
  the exponent" and every 2-base multi-exponentiation in the scheme become
  one MSM instead of k independent exponentiations plus k - 1 products.
* **Pippenger (bucket) MSM** — for large k (DKG transcript aggregation at
  big n) the bucket method costs ~k + 2^c additions per 254/c-bit window,
  beating Straus once k exceeds a few dozen terms.
* **Fixed-base windows** — for generators reused across many calls
  (``g_z``/``g_r`` in key generation, DKG commitment checks) a one-off
  table of ``d * 2^{w i} * P`` turns every later multiplication into
  ~254/w additions and **zero** doublings.  The table costs
  ``(2^w - 1) * 254/w`` additions to build, so it amortizes after roughly
  four multiplications at w = 4; callers opt in via
  :class:`FixedBaseTable` (or ``GroupElement.precompute()`` one layer up)
  precisely because the build-up is not free.

The trade-off knob everywhere is the window width: larger ``w`` means more
precomputation and memory for fewer additions per scalar.  Defaults (w = 4
single/fixed-base, c chosen from k for Pippenger) are tuned for 254-bit
scalars in pure Python, where a Jacobian addition costs ~16 field
multiplications and interpreter overhead rewards fewer, fatter operations.

**Mixed coordinates** (this PR): every table entry and every Pippenger
input is batch-normalized to affine with one shared field inversion
(:func:`~repro.curves.weierstrass.jac_batch_normalize`), so the inner
loops run mixed Jacobian+affine additions (7M + 4S instead of 11M + 5S —
~25% off each addition) and affine negation is free (negate y).  The
pure-Jacobian formulas remain the agreement reference via the naive
``jac_scalar_mul`` fold the property tests compare against.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.curves.weierstrass import (
    FieldOps, jac_add, jac_add_affine, jac_add_affine_fp,
    jac_batch_normalize, jac_double, jac_double_fp,
)


def _fast_arith(ops: FieldOps):
    """``(double, mixed_add)`` closures for the inner loops.

    Prime fields carried as plain ints (``ops.modulus`` set) get the
    specialized formulas with no per-operation lambda dispatch — worth
    ~2x on the doubling chain in CPython; extension fields take the
    generic path.
    """
    m = ops.modulus
    if m is not None:
        return (lambda point: jac_double_fp(point, m),
                lambda point, aff: jac_add_affine_fp(point, aff, m))
    return (lambda point: jac_double(ops, point),
            lambda point, aff: jac_add_affine(ops, point, aff))


def wnaf_digits(scalar: int, width: int = 4) -> List[int]:
    """Width-``w`` non-adjacent form of a non-negative scalar, LSB first.

    Every nonzero digit is odd, lies in ``(-2^{w-1}, 2^{w-1})``, and is
    followed by at least ``width - 1`` zeros; the digits reconstruct the
    scalar as ``sum_i d_i * 2^i``.
    """
    if scalar < 0:
        raise ValueError("wnaf_digits expects a non-negative scalar")
    if width < 2:
        raise ValueError("w-NAF width must be at least 2")
    digits: List[int] = []
    window = 1 << width
    half = window >> 1
    while scalar:
        if scalar & 1:
            digit = scalar % window
            if digit >= half:
                digit -= window
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _odd_multiples(ops: FieldOps, point, count: int) -> list:
    """``[P, 3P, 5P, ..., (2*count - 1)P]`` (count entries, Jacobian)."""
    multiples = [point]
    if count > 1:
        twice = jac_double(ops, point)
        for _ in range(count - 1):
            multiples.append(jac_add(ops, multiples[-1], twice))
    return multiples


def _affine_odd_multiples(ops: FieldOps, points, count: int):
    """Affine odd-multiple tables for every point, sharing ONE inversion.

    Returns ``(tables, negatives)`` lists-of-lists of affine pairs.  Odd
    multiples below the (prime) group order are never the identity, so
    every normalized entry exists.
    """
    flat = []
    for point in points:
        flat.extend(_odd_multiples(ops, point, count))
    normalized = jac_batch_normalize(ops, flat)
    tables = []
    negatives = []
    for start in range(0, len(flat), count):
        row = normalized[start:start + count]
        tables.append(row)
        negatives.append([(x, ops.neg(y)) for x, y in row])
    return tables, negatives


def scalar_mul(ops: FieldOps, point, scalar: int, order: int,
               width: int = 4):
    """w-NAF scalar multiplication; drop-in for ``jac_scalar_mul``."""
    infinity = (ops.one, ops.one, ops.zero)
    scalar %= order
    if scalar == 0 or ops.is_zero(point[2]):
        return infinity
    digits = wnaf_digits(scalar, width)
    (table,), (negatives,) = _affine_odd_multiples(
        ops, [point], 1 << (width - 2))
    double, mixed_add = _fast_arith(ops)
    result = infinity
    for digit in reversed(digits):
        result = double(result)
        if digit > 0:
            result = mixed_add(result, table[digit >> 1])
        elif digit < 0:
            result = mixed_add(result, negatives[(-digit) >> 1])
    return result


def multi_scalar_mul(ops: FieldOps, points: Sequence, scalars: Sequence[int],
                     order: int):
    """``sum_i scalars[i] * points[i]`` with shared doublings.

    Dispatches to interleaved-w-NAF Straus for small batches and to the
    Pippenger bucket method for large ones (the crossover in pure Python
    sits around a few dozen terms).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    live = [
        (point, scalar % order)
        for point, scalar in zip(points, scalars)
        if scalar % order != 0 and not ops.is_zero(point[2])
    ]
    if not live:
        return (ops.one, ops.one, ops.zero)
    if len(live) == 1:
        return scalar_mul(ops, live[0][0], live[0][1], order)
    # Crossover measured on this interpreter with mixed additions: the
    # shared-inversion affine tables make Straus cheaper than bucketing
    # until k ~ 200 (Combine and batch Share-Verify all sit below it;
    # DKG transcript aggregation at n in the hundreds sits above).
    if len(live) <= 192:
        return _straus(ops, live)
    return _pippenger(ops, live, order.bit_length())


def _straus(ops: FieldOps, live, width: int = 4):
    """Interleaved w-NAF: one shared doubling chain, per-point digit adds
    against batch-normalized affine tables."""
    count = 1 << (width - 2)
    tables, negatives = _affine_odd_multiples(
        ops, [point for point, _scalar in live], count)
    digit_rows = [wnaf_digits(scalar, width) for _point, scalar in live]
    length = max(len(row) for row in digit_rows)
    double, mixed_add = _fast_arith(ops)
    result = (ops.one, ops.one, ops.zero)
    for bit in range(length - 1, -1, -1):
        result = double(result)
        for row, table, negs in zip(digit_rows, tables, negatives):
            if bit >= len(row):
                continue
            digit = row[bit]
            if digit > 0:
                result = mixed_add(result, table[digit >> 1])
            elif digit < 0:
                result = mixed_add(result, negs[(-digit) >> 1])
    return result


def _pippenger_window(count: int) -> int:
    """Bucket width c minimizing the mixed-coordinate addition cost.

    Per 254/c-bit window the bucket fills are *mixed* additions (~11
    field multiplications each, inputs are batch-normalized affine) while
    the running-sum folds and the c doublings stay Jacobian (the fold
    term is discounted to ~20 per bucket for partially-empty buckets).
    Calibrated against a measured sweep at real trace sizes — DKG
    transcript aggregation (``_vk_component``) runs at |Q|(t+1) in the
    hundreds, where the sweep put the optimum at c = 5-6; the old
    unit-cost model under-sized the window across that range.
    """
    best_c, best_cost = 1, None
    for c in range(1, 17):
        windows = 254 // c + 1
        cost = windows * (count * 11 + (1 << c) * 20 + c * 8)
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def _pippenger(ops: FieldOps, live, scalar_bits: int):
    """Bucket MSM: per window, drop points into 2^c - 1 buckets and fold
    them with the running-sum trick.  Inputs are batch-normalized once so
    every bucket fill is a mixed addition."""
    infinity = (ops.one, ops.one, ops.zero)
    affine = jac_batch_normalize(ops, [point for point, _scalar in live])
    live = [
        (aff, scalar)
        for aff, (_point, scalar) in zip(affine, live)
        if aff is not None
    ]
    if not live:
        return infinity
    c = _pippenger_window(len(live))
    mask = (1 << c) - 1
    windows = (scalar_bits + c - 1) // c
    double, mixed_add = _fast_arith(ops)
    result = infinity
    for w in range(windows - 1, -1, -1):
        if result is not infinity:
            for _ in range(c):
                result = double(result)
        buckets = [None] * (mask + 1)
        shift = w * c
        for aff, scalar in live:
            digit = (scalar >> shift) & mask
            if digit == 0:
                continue
            held = buckets[digit]
            buckets[digit] = (aff[0], aff[1], ops.one) if held is None \
                else mixed_add(held, aff)
        running = None
        window_sum = None
        for digit in range(mask, 0, -1):
            held = buckets[digit]
            if held is not None:
                running = held if running is None else jac_add(
                    ops, running, held)
            if running is not None:
                window_sum = running if window_sum is None else jac_add(
                    ops, window_sum, running)
        if window_sum is not None:
            result = window_sum if result is infinity else jac_add(
                ops, result, window_sum)
    return result


class FixedBaseTable:
    """Windowed precomputation for a base point reused across many scalars.

    Stores ``table[i][d] = d * 2^{window * i} * P`` for every window ``i``
    and digit ``d`` in ``[1, 2^window)``; a multiplication then reads one
    entry per window and performs ~ceil(bits/window) - 1 additions, no
    doublings.  Entries are batch-normalized to **affine** after the
    build (one shared inversion), so every lookup addition is mixed.
    Digit multiples of a sub-order point are never the identity (the
    order is prime), so every entry normalizes.  See the module docstring
    for the amortization math.
    """

    __slots__ = ("ops", "order", "window", "tables", "_infinity")

    def __init__(self, ops: FieldOps, point, order: int, window: int = 4):
        if window < 1:
            raise ValueError("window must be positive")
        self.ops = ops
        self.order = order
        self.window = window
        self._infinity = (ops.one, ops.one, ops.zero)
        if ops.is_zero(point[2]):
            # Identity base: every multiple is the identity.
            self.tables = None
            return
        bits = order.bit_length()
        base = point
        rows: List[list] = []
        for _ in range((bits + window - 1) // window):
            row = [base]
            for _ in range((1 << window) - 2):
                row.append(jac_add(ops, row[-1], base))
            rows.append(row)
            for _ in range(window):
                base = jac_double(ops, base)
        flat = jac_batch_normalize(
            ops, [entry for row in rows for entry in row])
        per_row = (1 << window) - 1
        self.tables: List[list] = [
            [None] + flat[start:start + per_row]
            for start in range(0, len(flat), per_row)
        ]

    def mul(self, scalar: int):
        """``scalar * P`` from the table (scalar reduced modulo the order)."""
        ops = self.ops
        scalar %= self.order
        result = self._infinity
        if self.tables is None:
            return result
        _double, mixed_add = _fast_arith(ops)
        mask = (1 << self.window) - 1
        index = 0
        while scalar:
            digit = scalar & mask
            if digit:
                entry = self.tables[index][digit]
                result = (entry[0], entry[1], ops.one) \
                    if result is self._infinity \
                    else mixed_add(result, entry)
            scalar >>= self.window
            index += 1
        return result
