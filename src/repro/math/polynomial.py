"""Polynomials over Z_p used by all secret-sharing layers.

The paper's sharing polynomials ``A_ik[X] = a_ik0 + a_ik1 X + ... + a_ikt X^t``
live here.  Coefficients are plain integers reduced modulo the group order;
evaluation uses Horner's rule.
"""

from __future__ import annotations

import secrets
from typing import Sequence

from repro.errors import ParameterError


class Polynomial:
    """A polynomial over Z_p, represented by its coefficient list.

    ``coeffs[k]`` is the coefficient of ``X^k``.  The zero polynomial has a
    single zero coefficient so ``degree`` is well defined for sharing
    purposes (a degree-t sharing polynomial always carries t+1 coefficients,
    even when leading coefficients are zero).
    """

    __slots__ = ("coeffs", "modulus")

    def __init__(self, coeffs: Sequence[int], modulus: int):
        if not coeffs:
            raise ParameterError("polynomial needs at least one coefficient")
        self.modulus = modulus
        self.coeffs = tuple(c % modulus for c in coeffs)

    @classmethod
    def random(cls, degree: int, modulus: int, constant: int | None = None,
               rng=None) -> "Polynomial":
        """Sample a random polynomial of the given degree.

        When ``constant`` is given, the constant term is fixed to it — this is
        how a secret is shared (or how zero is shared during proactive
        refresh).  ``rng`` may be a ``random.Random`` for reproducible tests.
        """
        if degree < 0:
            raise ParameterError("degree must be non-negative")
        draw = (lambda: secrets.randbelow(modulus)) if rng is None else (
            lambda: rng.randrange(modulus))
        coeffs = [draw() for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = constant % modulus
        return cls(coeffs, modulus)

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def constant_term(self) -> int:
        return self.coeffs[0]

    def __call__(self, x: int) -> int:
        """Evaluate at ``x`` by Horner's rule."""
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * x + coeff) % self.modulus
        return acc

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if self.modulus != other.modulus:
            raise ParameterError("modulus mismatch")
        longest = max(len(self.coeffs), len(other.coeffs))
        coeffs = [
            (self.coeffs[k] if k < len(self.coeffs) else 0)
            + (other.coeffs[k] if k < len(other.coeffs) else 0)
            for k in range(longest)
        ]
        return Polynomial(coeffs, self.modulus)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.modulus == other.modulus
            and self.coeffs == other.coeffs
        )

    def __hash__(self):
        return hash((self.coeffs, self.modulus))

    def __repr__(self):
        return f"Polynomial(degree={self.degree})"
