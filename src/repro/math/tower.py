"""BN254 extension-field tower: F_p2, F_p6 and F_p12.

The paper instantiates its schemes on Barreto-Naehrig curves at the 128-bit
level; we use the standard BN254 ("alt_bn128") parameters.  The tower is

* ``F_p2  = F_p[u]  / (u^2 + 1)``
* ``F_p6  = F_p2[v] / (v^3 - xi)`` with ``xi = 9 + u``
* ``F_p12 = F_p6[w] / (w^2 - v)`` (equivalently ``F_p2[w] / (w^6 - xi)``)

For speed in pure Python, elements are plain nested tuples of ints and the
operations are module-level functions:

* F_p2 element:  ``(a0, a1)``              meaning ``a0 + a1*u``
* F_p6 element:  ``(c0, c1, c2)``          of F_p2, coefficients of 1, v, v^2
* F_p12 element: ``(d0, d1)``              of F_p6, coefficients of 1, w

Frobenius maps use the sextic representation over F_p2 (powers of ``w``),
with coefficients computed once at import time so no magic constants are
hard-coded.
"""

from __future__ import annotations

from typing import Sequence, Tuple

# ---------------------------------------------------------------------------
# BN254 base field and tower constants
# ---------------------------------------------------------------------------

#: BN254 base-field prime (the curve order of the twist's base field).
P = 21888242871839275222246405745257275088696311157297823662689037894645226208583

#: BN254 group order r (number of points on G1; prime).
R = 21888242871839275222246405745257275088548364400416034343698204186575808495617

#: BN parameter x: p and r are the standard BN polynomials evaluated at x.
BN_X = 4965661367192848881

#: Optimal-ate Miller loop length 6x + 2.
ATE_LOOP_COUNT = 6 * BN_X + 2

Fp2Ele = Tuple[int, int]
Fp6Ele = Tuple[Fp2Ele, Fp2Ele, Fp2Ele]
Fp12Ele = Tuple[Fp6Ele, Fp6Ele]

F2_ZERO: Fp2Ele = (0, 0)
F2_ONE: Fp2Ele = (1, 0)
#: The sextic non-residue xi = 9 + u defining the F_p6 (and twist) arithmetic.
XI: Fp2Ele = (9, 1)

F6_ZERO: Fp6Ele = (F2_ZERO, F2_ZERO, F2_ZERO)
F6_ONE: Fp6Ele = (F2_ONE, F2_ZERO, F2_ZERO)

F12_ZERO: Fp12Ele = (F6_ZERO, F6_ZERO)
F12_ONE: Fp12Ele = (F6_ONE, F6_ZERO)


# ---------------------------------------------------------------------------
# F_p2 arithmetic
# ---------------------------------------------------------------------------

def f2_add(a: Fp2Ele, b: Fp2Ele) -> Fp2Ele:
    return ((a[0] + b[0]) % P, (a[1] + b[1]) % P)


def f2_sub(a: Fp2Ele, b: Fp2Ele) -> Fp2Ele:
    return ((a[0] - b[0]) % P, (a[1] - b[1]) % P)


def f2_neg(a: Fp2Ele) -> Fp2Ele:
    return (-a[0] % P, -a[1] % P)


def f2_conj(a: Fp2Ele) -> Fp2Ele:
    """Complex conjugation a0 - a1*u; this is the F_p2 Frobenius."""
    return (a[0], -a[1] % P)


def f2_mul(a: Fp2Ele, b: Fp2Ele) -> Fp2Ele:
    """Karatsuba multiplication in F_p2 (3 base-field multiplications)."""
    t0 = a[0] * b[0]
    t1 = a[1] * b[1]
    t2 = (a[0] + a[1]) * (b[0] + b[1])
    return ((t0 - t1) % P, (t2 - t0 - t1) % P)


def f2_sqr(a: Fp2Ele) -> Fp2Ele:
    """Complex squaring: (a0+a1)(a0-a1) + 2*a0*a1*u."""
    t = a[0] * a[1]
    return ((a[0] + a[1]) * (a[0] - a[1]) % P, (t + t) % P)


def f2_mul_scalar(a: Fp2Ele, k: int) -> Fp2Ele:
    return (a[0] * k % P, a[1] * k % P)


def f2_mul_xi(a: Fp2Ele) -> Fp2Ele:
    """Multiply by xi = 9 + u: (9*a0 - a1) + (a0 + 9*a1)*u."""
    return ((9 * a[0] - a[1]) % P, (a[0] + 9 * a[1]) % P)


def f2_inv(a: Fp2Ele) -> Fp2Ele:
    """Inversion via the norm: a^-1 = conj(a) / (a0^2 + a1^2)."""
    norm = (a[0] * a[0] + a[1] * a[1]) % P
    if norm == 0:
        raise ZeroDivisionError("inverse of zero in F_p2")
    inv_norm = pow(norm, -1, P)
    return (a[0] * inv_norm % P, -a[1] * inv_norm % P)


def f2_pow(a: Fp2Ele, e: int) -> Fp2Ele:
    if e < 0:
        return f2_pow(f2_inv(a), -e)
    result = F2_ONE
    base = a
    while e:
        if e & 1:
            result = f2_mul(result, base)
        base = f2_sqr(base)
        e >>= 1
    return result


def f2_is_zero(a: Fp2Ele) -> bool:
    return a[0] % P == 0 and a[1] % P == 0


def f2_eq(a: Fp2Ele, b: Fp2Ele) -> bool:
    return (a[0] - b[0]) % P == 0 and (a[1] - b[1]) % P == 0


def f2_sqrt(a: Fp2Ele) -> Fp2Ele | None:
    """Square root in F_p2 (complex method); None if ``a`` is a non-square.

    Uses the standard two-step algorithm: candidate ``x = a^((p^2+7)/16)``
    does not apply here since p^2 % 8 varies; instead we use the formula for
    p % 4 == 3 base fields: write a = alpha + beta*u and solve via norms.
    """
    from repro.math.field import sqrt_mod

    alpha, beta = a[0] % P, a[1] % P
    if beta == 0:
        root = sqrt_mod(alpha, P)
        if root is not None:
            return (root, 0)
        # alpha is a non-square in F_p, so alpha = -gamma^2 and
        # sqrt(alpha) = gamma * u since u^2 = -1.
        root = sqrt_mod(-alpha % P, P)
        if root is None:
            return None
        return (0, root)
    # norm = alpha^2 + beta^2 must be a QR in F_p for a to be a square.
    norm = (alpha * alpha + beta * beta) % P
    n_root = sqrt_mod(norm, P)
    if n_root is None:
        return None
    # x0^2 = (alpha + n_root) / 2 (try both signs of n_root).
    inv2 = pow(2, -1, P)
    for candidate in (n_root, -n_root % P):
        x0_sq = (alpha + candidate) * inv2 % P
        x0 = sqrt_mod(x0_sq, P)
        if x0 is None or x0 == 0:
            continue
        x1 = beta * pow(2 * x0, -1, P) % P
        if f2_eq(f2_sqr((x0, x1)), a):
            return (x0, x1)
    return None


# ---------------------------------------------------------------------------
# F_p6 arithmetic (coefficients of 1, v, v^2 over F_p2; v^3 = xi)
# ---------------------------------------------------------------------------

def f6_add(a: Fp6Ele, b: Fp6Ele) -> Fp6Ele:
    return (f2_add(a[0], b[0]), f2_add(a[1], b[1]), f2_add(a[2], b[2]))


def f6_sub(a: Fp6Ele, b: Fp6Ele) -> Fp6Ele:
    return (f2_sub(a[0], b[0]), f2_sub(a[1], b[1]), f2_sub(a[2], b[2]))


def f6_neg(a: Fp6Ele) -> Fp6Ele:
    return (f2_neg(a[0]), f2_neg(a[1]), f2_neg(a[2]))


def f6_mul(a: Fp6Ele, b: Fp6Ele) -> Fp6Ele:
    """Karatsuba-style multiplication (6 F_p2 multiplications)."""
    a0, a1, a2 = a
    b0, b1, b2 = b
    t0 = f2_mul(a0, b0)
    t1 = f2_mul(a1, b1)
    t2 = f2_mul(a2, b2)
    # c0 = t0 + xi * ((a1 + a2)(b1 + b2) - t1 - t2)
    c0 = f2_add(t0, f2_mul_xi(
        f2_sub(f2_sub(f2_mul(f2_add(a1, a2), f2_add(b1, b2)), t1), t2)))
    # c1 = (a0 + a1)(b0 + b1) - t0 - t1 + xi * t2
    c1 = f2_add(
        f2_sub(f2_sub(f2_mul(f2_add(a0, a1), f2_add(b0, b1)), t0), t1),
        f2_mul_xi(t2))
    # c2 = (a0 + a2)(b0 + b2) - t0 - t2 + t1
    c2 = f2_add(
        f2_sub(f2_sub(f2_mul(f2_add(a0, a2), f2_add(b0, b2)), t0), t2), t1)
    return (c0, c1, c2)


def f6_sqr(a: Fp6Ele) -> Fp6Ele:
    """CH-SQR2 squaring (2 squarings + 3 multiplications in F_p2)."""
    a0, a1, a2 = a
    s0 = f2_sqr(a0)
    ab = f2_mul(a0, a1)
    s1 = f2_add(ab, ab)
    s2 = f2_sqr(f2_add(f2_sub(a0, a1), a2))
    bc = f2_mul(a1, a2)
    s3 = f2_add(bc, bc)
    s4 = f2_sqr(a2)
    c0 = f2_add(s0, f2_mul_xi(s3))
    c1 = f2_add(s1, f2_mul_xi(s4))
    c2 = f2_sub(f2_add(f2_add(s1, s2), s3), f2_add(s0, s4))
    return (c0, c1, c2)


def f6_mul_by_v(a: Fp6Ele) -> Fp6Ele:
    """Multiply by v: (c0, c1, c2) -> (xi*c2, c0, c1)."""
    return (f2_mul_xi(a[2]), a[0], a[1])


def f6_inv(a: Fp6Ele) -> Fp6Ele:
    """Inversion via the adjugate formula."""
    a0, a1, a2 = a
    t0 = f2_sub(f2_sqr(a0), f2_mul_xi(f2_mul(a1, a2)))
    t1 = f2_sub(f2_mul_xi(f2_sqr(a2)), f2_mul(a0, a1))
    t2 = f2_sub(f2_sqr(a1), f2_mul(a0, a2))
    factor = f2_add(
        f2_mul(a0, t0),
        f2_mul_xi(f2_add(f2_mul(a2, t1), f2_mul(a1, t2))))
    inv_factor = f2_inv(factor)
    return (f2_mul(t0, inv_factor), f2_mul(t1, inv_factor),
            f2_mul(t2, inv_factor))


def f6_is_zero(a: Fp6Ele) -> bool:
    return all(f2_is_zero(c) for c in a)


def f6_eq(a: Fp6Ele, b: Fp6Ele) -> bool:
    return all(f2_eq(x, y) for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# F_p12 arithmetic (coefficients of 1, w over F_p6; w^2 = v)
# ---------------------------------------------------------------------------

def f12_add(a: Fp12Ele, b: Fp12Ele) -> Fp12Ele:
    return (f6_add(a[0], b[0]), f6_add(a[1], b[1]))


def f12_mul(a: Fp12Ele, b: Fp12Ele) -> Fp12Ele:
    """Karatsuba multiplication (3 F_p6 multiplications), int-inlined.

    The three products run through :func:`_f6_mul_int` (defined below)
    and the v-multiplication/additions stay on plain ints — ``f12_mul``
    is the workhorse of every GT operation and every Miller-loop
    accumulator fold, so it gets the same treatment as
    :func:`f12_sqr`/:func:`f12_mul_line`.
    """
    a0, a1 = a
    b0, b1 = b
    t0 = _f6_mul_int(a0, b0)
    t1 = _f6_mul_int(a1, b1)
    lhs = (
        (a0[0][0] + a1[0][0], a0[0][1] + a1[0][1]),
        (a0[1][0] + a1[1][0], a0[1][1] + a1[1][1]),
        (a0[2][0] + a1[2][0], a0[2][1] + a1[2][1]),
    )
    rhs = (
        (b0[0][0] + b1[0][0], b0[0][1] + b1[0][1]),
        (b0[1][0] + b1[1][0], b0[1][1] + b1[1][1]),
        (b0[2][0] + b1[2][0], b0[2][1] + b1[2][1]),
    )
    ts = _f6_mul_int(lhs, rhs)
    # c0 = t0 + v*t1 with v*(c0, c1, c2) = (xi*c2, c0, c1), xi = 9 + u.
    c0 = (
        ((t0[0][0] + 9 * t1[2][0] - t1[2][1]) % P,
         (t0[0][1] + t1[2][0] + 9 * t1[2][1]) % P),
        ((t0[1][0] + t1[0][0]) % P, (t0[1][1] + t1[0][1]) % P),
        ((t0[2][0] + t1[1][0]) % P, (t0[2][1] + t1[1][1]) % P),
    )
    c1 = (
        ((ts[0][0] - t0[0][0] - t1[0][0]) % P,
         (ts[0][1] - t0[0][1] - t1[0][1]) % P),
        ((ts[1][0] - t0[1][0] - t1[1][0]) % P,
         (ts[1][1] - t0[1][1] - t1[1][1]) % P),
        ((ts[2][0] - t0[2][0] - t1[2][0]) % P,
         (ts[2][1] - t0[2][1] - t1[2][1]) % P),
    )
    return (c0, c1)


def _f6_mul_int(a: Fp6Ele, b: Fp6Ele) -> Fp6Ele:
    """Karatsuba F_p6 multiplication fully inlined over base-field ints.

    Accepts unreduced (but single-multiplication-level) coefficients and
    reduces only the six output ints.  This is the engine behind the
    int-inlined :func:`f12_sqr`: the Miller-loop accumulator squares once
    per loop bit, where the call/tuple overhead of composing
    ``f2_mul``/``f2_mul_xi`` costs as much as the arithmetic itself in
    CPython (same motivation as :func:`_fp4_sqr`).
    """
    (a00, a01), (a10, a11), (a20, a21) = a
    (b00, b01), (b10, b11), (b20, b21) = b
    # t_k = a_k * b_k, Karatsuba over F_p2 (u^2 = -1), unreduced.
    v0 = a00 * b00
    v1 = a01 * b01
    t00 = v0 - v1
    t01 = (a00 + a01) * (b00 + b01) - v0 - v1
    v0 = a10 * b10
    v1 = a11 * b11
    t10 = v0 - v1
    t11 = (a10 + a11) * (b10 + b11) - v0 - v1
    v0 = a20 * b20
    v1 = a21 * b21
    t20 = v0 - v1
    t21 = (a20 + a21) * (b20 + b21) - v0 - v1
    # c0 = t0 + xi * ((a1 + a2)(b1 + b2) - t1 - t2), xi = 9 + u.
    s0 = a10 + a20
    s1 = a11 + a21
    r0 = b10 + b20
    r1 = b11 + b21
    v0 = s0 * r0
    v1 = s1 * r1
    x0 = v0 - v1 - t10 - t20
    x1 = (s0 + s1) * (r0 + r1) - v0 - v1 - t11 - t21
    c00 = (t00 + 9 * x0 - x1) % P
    c01 = (t01 + x0 + 9 * x1) % P
    # c1 = (a0 + a1)(b0 + b1) - t0 - t1 + xi * t2.
    s0 = a00 + a10
    s1 = a01 + a11
    r0 = b00 + b10
    r1 = b01 + b11
    v0 = s0 * r0
    v1 = s1 * r1
    c10 = (v0 - v1 - t00 - t10 + 9 * t20 - t21) % P
    c11 = ((s0 + s1) * (r0 + r1) - v0 - v1 - t01 - t11 + t20
           + 9 * t21) % P
    # c2 = (a0 + a2)(b0 + b2) - t0 - t2 + t1.
    s0 = a00 + a20
    s1 = a01 + a21
    r0 = b00 + b20
    r1 = b01 + b21
    v0 = s0 * r0
    v1 = s1 * r1
    c20 = (v0 - v1 - t00 - t20 + t10) % P
    c21 = ((s0 + s1) * (r0 + r1) - v0 - v1 - t01 - t21 + t11) % P
    return ((c00, c01), (c10, c11), (c20, c21))


def f12_sqr(a: Fp12Ele) -> Fp12Ele:
    """Complex squaring (2 F_p6 multiplications), int-inlined.

    ``(a0 + a1 w)^2 = (a0 + a1)(a0 + v a1) - t - v t + 2 t w`` with
    ``t = a0 a1``; the two products go through :func:`_f6_mul_int` and
    the v-multiplications/additions stay on plain ints so the only
    reductions are the twelve output coefficients.
    """
    a0, a1 = a
    (a10, a11) = a1[0]
    (a12, a13) = a1[1]
    (a14, a15) = a1[2]
    t = _f6_mul_int(a0, a1)
    # a0 + a1 (unreduced sums are fine: one multiplication level below).
    lhs = (
        (a0[0][0] + a10, a0[0][1] + a11),
        (a0[1][0] + a12, a0[1][1] + a13),
        (a0[2][0] + a14, a0[2][1] + a15),
    )
    # a0 + v * a1 with v * (c0, c1, c2) = (xi*c2, c0, c1), xi = 9 + u.
    rhs = (
        (a0[0][0] + 9 * a14 - a15, a0[0][1] + a14 + 9 * a15),
        (a0[1][0] + a10, a0[1][1] + a11),
        (a0[2][0] + a12, a0[2][1] + a13),
    )
    u = _f6_mul_int(lhs, rhs)
    t0, t1, t2 = t
    c0 = (
        ((u[0][0] - t0[0] - 9 * t2[0] + t2[1]) % P,
         (u[0][1] - t0[1] - t2[0] - 9 * t2[1]) % P),
        ((u[1][0] - t1[0] - t0[0]) % P, (u[1][1] - t1[1] - t0[1]) % P),
        ((u[2][0] - t2[0] - t1[0]) % P, (u[2][1] - t2[1] - t1[1]) % P),
    )
    c1 = (
        ((t0[0] + t0[0]) % P, (t0[1] + t0[1]) % P),
        ((t1[0] + t1[0]) % P, (t1[1] + t1[1]) % P),
        ((t2[0] + t2[0]) % P, (t2[1] + t2[1]) % P),
    )
    return (c0, c1)


def f12_conj(a: Fp12Ele) -> Fp12Ele:
    """Conjugation over F_p6; equals the p^6-power Frobenius."""
    return (a[0], f6_neg(a[1]))


def _f6_mul_sparse01(a: Fp6Ele, b0: Fp2Ele, b1: Fp2Ele) -> Fp6Ele:
    """Multiply by the sparse F_p6 element ``b0 + b1*v`` (5 F_p2 muls)."""
    a0, a1, a2 = a
    m0 = f2_mul(a0, b0)
    m1 = f2_mul(a1, b1)
    ms = f2_mul(f2_add(a0, a1), f2_add(b0, b1))
    return (
        f2_add(m0, f2_mul_xi(f2_mul(a2, b1))),
        f2_sub(f2_sub(ms, m0), m1),
        f2_add(m1, f2_mul(a2, b0)),
    )


def _f6_mul_sparse01_int(a: Fp6Ele, b0: Fp2Ele, b1: Fp2Ele) -> Fp6Ele:
    """Multiply by the sparse F_p6 element ``b0 + b1*v``, int-inlined.

    Same 5-F_p2-multiplication schedule as :func:`_f6_mul_sparse01` but
    over plain ints with **no reductions**: callers combine the outputs
    further before taking a single final ``% P`` per coefficient.
    """
    (a00, a01), (a10, a11), (a20, a21) = a
    b00, b01 = b0
    b10, b11 = b1
    # m0 = a0 * b0, m1 = a1 * b1, ms = (a0 + a1)(b0 + b1).
    v0 = a00 * b00
    v1 = a01 * b01
    m00 = v0 - v1
    m01 = (a00 + a01) * (b00 + b01) - v0 - v1
    v0 = a10 * b10
    v1 = a11 * b11
    m10 = v0 - v1
    m11 = (a10 + a11) * (b10 + b11) - v0 - v1
    s0 = a00 + a10
    s1 = a01 + a11
    r0 = b00 + b10
    r1 = b01 + b11
    v0 = s0 * r0
    v1 = s1 * r1
    ms0 = v0 - v1
    ms1 = (s0 + s1) * (r0 + r1) - v0 - v1
    # a2 * b1 and a2 * b0.
    v0 = a20 * b10
    v1 = a21 * b11
    x0 = v0 - v1
    x1 = (a20 + a21) * (b10 + b11) - v0 - v1
    v0 = a20 * b00
    v1 = a21 * b01
    y0 = v0 - v1
    y1 = (a20 + a21) * (b00 + b01) - v0 - v1
    # (m0 + xi*(a2 b1), ms - m0 - m1, m1 + a2 b0), xi = 9 + u.
    return (
        (m00 + 9 * x0 - x1, m01 + x0 + 9 * x1),
        (ms0 - m00 - m10, ms1 - m01 - m11),
        (m10 + y0, m11 + y1),
    )


def f12_mul_line(f: Fp12Ele, l0: Fp2Ele, l1: Fp2Ele,
                 l3: Fp2Ele) -> Fp12Ele:
    """Multiply by the sparse element ``l0 + l1*w + l3*w^3``, int-inlined.

    This is the shape of every Miller-loop line on BN curves (nonzero
    w-vector coefficients at w^0, w^1, w^3 only), so the pairing pays
    ~13 F_p2 multiplications per line instead of the 18 of a full
    :func:`f12_mul` — fewer still when ``l0`` lies in F_p, which holds
    for every chord/tangent line (``l0 = (y_P, 0)``).  Like
    :func:`_fp4_sqr`, the whole schedule runs on plain ints (this is the
    other per-line hot op of the Miller loop, executed ~90 times per
    pairing) and each output coefficient is reduced exactly once.
    """
    f0, f1 = f
    if l0[1] == 0:
        scalar = l0[0]
        t0 = (
            (f0[0][0] * scalar, f0[0][1] * scalar),
            (f0[1][0] * scalar, f0[1][1] * scalar),
            (f0[2][0] * scalar, f0[2][1] * scalar),
        )
    else:
        l00, l01 = l0
        t0 = []
        for c0, c1 in f0:
            v0 = c0 * l00
            v1 = c1 * l01
            t0.append((v0 - v1, (c0 + c1) * (l00 + l01) - v0 - v1))
        t0 = tuple(t0)
    t1 = _f6_mul_sparse01_int(f1, l1, l3)
    fsum = (
        (f0[0][0] + f1[0][0], f0[0][1] + f1[0][1]),
        (f0[1][0] + f1[1][0], f0[1][1] + f1[1][1]),
        (f0[2][0] + f1[2][0], f0[2][1] + f1[2][1]),
    )
    tsum = _f6_mul_sparse01_int(
        fsum, (l0[0] + l1[0], l0[1] + l1[1]), l3)
    # out0 = t0 + v*t1 with v*(c0, c1, c2) = (xi*c2, c0, c1).
    out0 = (
        ((t0[0][0] + 9 * t1[2][0] - t1[2][1]) % P,
         (t0[0][1] + t1[2][0] + 9 * t1[2][1]) % P),
        ((t0[1][0] + t1[0][0]) % P, (t0[1][1] + t1[0][1]) % P),
        ((t0[2][0] + t1[1][0]) % P, (t0[2][1] + t1[1][1]) % P),
    )
    out1 = (
        ((tsum[0][0] - t0[0][0] - t1[0][0]) % P,
         (tsum[0][1] - t0[0][1] - t1[0][1]) % P),
        ((tsum[1][0] - t0[1][0] - t1[1][0]) % P,
         (tsum[1][1] - t0[1][1] - t1[1][1]) % P),
        ((tsum[2][0] - t0[2][0] - t1[2][0]) % P,
         (tsum[2][1] - t0[2][1] - t1[2][1]) % P),
    )
    return (out0, out1)


def f12_inv(a: Fp12Ele) -> Fp12Ele:
    a0, a1 = a
    factor = f6_inv(f6_sub(f6_sqr(a0), f6_mul_by_v(f6_sqr(a1))))
    return (f6_mul(a0, factor), f6_neg(f6_mul(a1, factor)))


def f12_pow(a: Fp12Ele, e: int) -> Fp12Ele:
    if e < 0:
        return f12_pow(f12_inv(a), -e)
    result = F12_ONE
    base = a
    while e:
        if e & 1:
            result = f12_mul(result, base)
        base = f12_sqr(base)
        e >>= 1
    return result


def f12_is_one(a: Fp12Ele) -> bool:
    return f6_eq(a[0], F6_ONE) and f6_is_zero(a[1])


def f12_eq(a: Fp12Ele, b: Fp12Ele) -> bool:
    return f6_eq(a[0], b[0]) and f6_eq(a[1], b[1])


# ---------------------------------------------------------------------------
# Sextic representation over F_p2 and Frobenius maps
# ---------------------------------------------------------------------------

def f12_to_wvec(a: Fp12Ele) -> Tuple[Fp2Ele, ...]:
    """Rewrite (d0 + d1*w) with d_i over (1, v, v^2) as sum a_k * w^k.

    Since v = w^2 the basis permutation is
    (c00, c01, c02, c10, c11, c12) -> (a0, a2, a4, a1, a3, a5).
    """
    (c00, c01, c02), (c10, c11, c12) = a
    return (c00, c10, c01, c11, c02, c12)


def wvec_to_f12(vec: Tuple[Fp2Ele, ...]) -> Fp12Ele:
    a0, a1, a2, a3, a4, a5 = vec
    return ((a0, a2, a4), (a1, a3, a5))


def _frobenius_tables():
    """Precompute xi^(k*(p^m - 1)/6) for m = 1, 2, 3 and k = 0..5."""
    tables = []
    for m in (1, 2, 3):
        exponent = (P ** m - 1) // 6
        tables.append(tuple(f2_pow(XI, k * exponent) for k in range(6)))
    return tables


_FROB_W1, _FROB_W2, _FROB_W3 = _frobenius_tables()

#: Twist-Frobenius constants used to compute pi_p on G2 points:
#: pi(x, y) = (conj(x) * TWIST_FROB_X, conj(y) * TWIST_FROB_Y).
TWIST_FROB_X: Fp2Ele = f2_pow(XI, (P - 1) // 3)
TWIST_FROB_Y: Fp2Ele = f2_pow(XI, (P - 1) // 2)
#: And pi^2 constants (no conjugation): both lie in F_p for BN curves.
TWIST_FROB_X2: Fp2Ele = f2_pow(XI, (P * P - 1) // 3)
TWIST_FROB_Y2: Fp2Ele = f2_pow(XI, (P * P - 1) // 2)


def f12_frobenius(a: Fp12Ele, power: int = 1) -> Fp12Ele:
    """The p^power Frobenius endomorphism for power in {1, 2, 3, 6}."""
    if power == 6:
        return f12_conj(a)
    vec = f12_to_wvec(a)
    if power == 1:
        out = tuple(f2_mul(f2_conj(c), _FROB_W1[k]) for k, c in enumerate(vec))
    elif power == 2:
        out = tuple(f2_mul(c, _FROB_W2[k]) for k, c in enumerate(vec))
    elif power == 3:
        out = tuple(f2_mul(f2_conj(c), _FROB_W3[k]) for k, c in enumerate(vec))
    else:
        raise ValueError("supported Frobenius powers: 1, 2, 3, 6")
    return wvec_to_f12(out)


def _naf_digits(e: int) -> list:
    """Plain (width-2) non-adjacent form, least-significant digit first."""
    naf = []
    while e:
        if e & 1:
            digit = 2 - (e % 4)
            e -= digit
        else:
            digit = 0
        naf.append(digit)
        e >>= 1
    return naf


def f12_cyclotomic_pow(a: Fp12Ele, e: int) -> Fp12Ele:
    """Naive-reference exponentiation for cyclotomic-subgroup elements.

    After the easy part of the final exponentiation, elements satisfy
    ``conj(a) = a^-1``, so negative digits of a NAF representation cost a
    conjugation instead of an inversion.  This is the seed ladder (full
    ``f12_sqr`` per bit); :func:`cyclotomic_exp` is the fast path and this
    function remains its agreement baseline.
    """
    if e < 0:
        return f12_cyclotomic_pow(f12_conj(a), -e)
    result = F12_ONE
    a_conj = f12_conj(a)
    for digit in reversed(_naf_digits(e)):
        result = f12_sqr(result)
        if digit == 1:
            result = f12_mul(result, a)
        elif digit == -1:
            result = f12_mul(result, a_conj)
    return result


# ---------------------------------------------------------------------------
# Cyclotomic-subgroup fast arithmetic (Granger-Scott / Karabina)
# ---------------------------------------------------------------------------
#
# Elements surviving the easy part of the final exponentiation lie in the
# cyclotomic subgroup G_{Phi_12}(p) of F_p12*, where squaring collapses to
# arithmetic in the three F_p4 sub-planes spanned by (w^k, w^{k+3}) with
# (w^3)^2 = xi.  In the w-power basis (a0, ..., a5):
#
# * Granger-Scott squaring costs three F_p4 squarings (9 F_p2 squarings)
#   instead of the ~18 F_p2 multiplications of a generic ``f12_sqr``;
# * Karabina's compressed squaring drops the (a0, a3) plane entirely —
#   two F_p4 squarings per step — and recovers it only when a NAF digit
#   actually needs the full element.  Unitarity (a * conj(a) = 1) makes
#   (a0, a3) the solution of a 2x2 *linear* system in the retained
#   coefficients, so a whole exponentiation batch-decompresses with one
#   shared F_p2 inversion.


def _fp4_sqr(a: Fp2Ele, b: Fp2Ele) -> Tuple[Fp2Ele, Fp2Ele]:
    """Square ``a + b*s`` in F_p4 = F_p2[s]/(s^2 - xi).

    Fully inlined over the base field (six bigint multiplications): this
    runs 190+ times per final exponentiation, where the call/tuple
    overhead of composing :func:`f2_sqr`/:func:`f2_mul_xi` costs as much
    as the arithmetic itself in CPython.
    """
    a0, a1 = a
    b0, b1 = b
    # t0 = a^2, t1 = b^2 via complex squaring.
    t00 = (a0 + a1) * (a0 - a1)
    t01 = 2 * a0 * a1
    t10 = (b0 + b1) * (b0 - b1)
    t11 = 2 * b0 * b1
    # c0 = xi * t1 + t0 with xi = 9 + u.
    c0 = ((9 * t10 - t11 + t00) % P, (t10 + 9 * t11 + t01) % P)
    # c1 = (a + b)^2 - t0 - t1.
    s0 = a0 + b0
    s1 = a1 + b1
    c1 = (((s0 + s1) * (s0 - s1) - t00 - t10) % P,
          (2 * s0 * s1 - t01 - t11) % P)
    return c0, c1


def f12_cyclotomic_sqr(a: Fp12Ele) -> Fp12Ele:
    """Granger-Scott squaring; only valid in the cyclotomic subgroup."""
    a0, a1, a2, a3, a4, a5 = f12_to_wvec(a)
    t0, t1 = _fp4_sqr(a0, a3)
    x = f2_sub(t0, a0)
    n0 = f2_add(f2_add(x, x), t0)
    y = f2_add(t1, a3)
    n3 = f2_add(f2_add(y, y), t1)
    t0, t1 = _fp4_sqr(a1, a4)
    x = f2_sub(t0, a2)
    n2 = f2_add(f2_add(x, x), t0)
    y = f2_add(t1, a5)
    n5 = f2_add(f2_add(y, y), t1)
    t0, t1 = _fp4_sqr(a2, a5)
    xi_t1 = f2_mul_xi(t1)
    x = f2_add(xi_t1, a1)
    n1 = f2_add(f2_add(x, x), xi_t1)
    y = f2_sub(t0, a4)
    n4 = f2_add(f2_add(y, y), t0)
    return wvec_to_f12((n0, n1, n2, n3, n4, n5))


#: Compressed cyclotomic element: the (a1, a2, a4, a5) w-power coefficients.
CompressedFp12 = Tuple[Fp2Ele, Fp2Ele, Fp2Ele, Fp2Ele]


def f12_compress(a: Fp12Ele) -> CompressedFp12:
    vec = f12_to_wvec(a)
    return (vec[1], vec[2], vec[4], vec[5])


def f12_compressed_sqr(c: CompressedFp12) -> CompressedFp12:
    """One Karabina squaring step on compressed coordinates (2 F_p4 sqr)."""
    a1, a2, a4, a5 = c
    b0, b1 = _fp4_sqr(a1, a4)
    c0, c1 = _fp4_sqr(a2, a5)
    xi_c1 = f2_mul_xi(c1)
    x = f2_add(xi_c1, a1)
    n1 = f2_add(f2_add(x, x), xi_c1)
    x = f2_sub(b0, a2)
    n2 = f2_add(f2_add(x, x), b0)
    x = f2_sub(c0, a4)
    n4 = f2_add(f2_add(x, x), c0)
    x = f2_add(b1, a5)
    n5 = f2_add(f2_add(x, x), b1)
    return (n1, n2, n4, n5)


def f12_decompress_batch(compressed: Sequence[CompressedFp12]):
    """Recover full elements from compressed ones with ONE F_p2 inversion.

    Unitarity ``a * conj(a) = 1`` forces, writing the element as
    ``sum a_k w^k`` and comparing the w^2 and w^4 components,

        2*a2*a0 - 2*xi*a5*a3 = a1^2 - xi*a4^2
        2*a4*a0 - 2*a1*a3    = xi*a5^2 - a2^2

    — a linear system in the dropped pair (a0, a3) with determinant
    ``4*(xi*a4*a5 - a1*a2)``.  The determinants are inverted together via
    Montgomery's trick.  Returns None when any determinant vanishes (e.g.
    the identity element); callers fall back to the uncompressed ladder.
    """
    rhs = []
    dets = []
    for a1, a2, a4, a5 in compressed:
        r1 = f2_sub(f2_sqr(a1), f2_mul_xi(f2_sqr(a4)))
        r2 = f2_sub(f2_mul_xi(f2_sqr(a5)), f2_sqr(a2))
        det = f2_sub(f2_mul_xi(f2_mul(a4, a5)), f2_mul(a1, a2))
        det = f2_add(det, det)
        if f2_is_zero(det):
            return None
        rhs.append((r1, r2))
        dets.append(det)
    # Montgomery batch inversion of the determinants.
    prefix = []
    acc = F2_ONE
    for det in dets:
        acc = f2_mul(acc, det)
        prefix.append(acc)
    inv_acc = f2_inv(acc)
    inverses = [F2_ZERO] * len(dets)
    for i in range(len(dets) - 1, -1, -1):
        before = prefix[i - 1] if i else F2_ONE
        inverses[i] = f2_mul(before, inv_acc)
        inv_acc = f2_mul(inv_acc, dets[i])
    out = []
    for (a1, a2, a4, a5), (r1, r2), inv in zip(compressed, rhs, inverses):
        a0 = f2_mul(f2_sub(f2_mul_xi(f2_mul(a5, r2)), f2_mul(a1, r1)), inv)
        a3 = f2_mul(f2_sub(f2_mul(a2, r2), f2_mul(a4, r1)), inv)
        out.append(wvec_to_f12((a0, a1, a2, a3, a4, a5)))
    return out


def _cyclotomic_exp_gs(a: Fp12Ele, naf: Sequence[int]) -> Fp12Ele:
    """Uncompressed fallback: Granger-Scott squarings, NAF digits."""
    result = F12_ONE
    a_conj = f12_conj(a)
    for digit in reversed(naf):
        result = f12_cyclotomic_sqr(result) if result is not F12_ONE \
            else result
        if digit == 1:
            result = f12_mul(result, a)
        elif digit == -1:
            result = f12_mul(result, a_conj)
    return result


def _cyclotomic_exp_wnaf(a: Fp12Ele, e: int) -> Fp12Ele:
    """Dense-exponent ladder: width-4 w-NAF over Granger-Scott squarings.

    Three multiplications build the odd-power table a, a^3, a^5, a^7
    (negative digits are conjugations), then ~1 multiplication per 5
    squarings.  For a full 254-bit exponent this beats the Karabina
    compressed chain because a *dense* NAF forces a decompression solve
    for every nonzero digit, which costs more than the squaring savings.
    """
    from repro.math.msm import wnaf_digits

    twice = f12_cyclotomic_sqr(a)
    table = [a]
    for _ in range(3):
        table.append(f12_mul(table[-1], twice))
    result = None
    for digit in reversed(wnaf_digits(e, 4)):
        if result is not None:
            result = f12_cyclotomic_sqr(result)
        if digit > 0:
            entry = table[digit >> 1]
            result = entry if result is None else f12_mul(result, entry)
        elif digit < 0:
            entry = f12_conj(table[(-digit) >> 1])
            result = entry if result is None else f12_mul(result, entry)
    return F12_ONE if result is None else result


#: A NAF sparser than one nonzero digit per this many bits goes through
#: the Karabina compressed chain; denser exponents take the w-NAF
#: Granger-Scott ladder.  The BN final-exponentiation parameter (NAF
#: weight 24 over 63 bits) and random 254-bit exponents (weight ~85)
#: both sit on the w-NAF side; the compressed chain wins for the very
#: sparse exponents of small-exponent batching and subgroup-check
#: tricks, where almost no digit forces a decompression solve.
_COMPRESSED_SPARSITY = 8


def cyclotomic_exp(a: Fp12Ele, e: int) -> Fp12Ele:
    """Fast exponentiation in the cyclotomic subgroup.

    Recodes the exponent in NAF and picks the chain by digit density:
    dense exponents run width-4 w-NAF over Granger-Scott squarings
    (:func:`_cyclotomic_exp_wnaf`); sparse ones run the squaring chain
    on *compressed* Karabina coordinates, batch-decompress the few
    powers the NAF digits actually reference (one shared F_p2 inversion)
    and multiply them together — negative digits cost a conjugation
    either way.  Agreement baseline: :func:`f12_cyclotomic_pow`.
    Undefined outside the cyclotomic subgroup, exactly like the naive
    ladder.
    """
    if e < 0:
        return cyclotomic_exp(f12_conj(a), -e)
    if e == 0:
        return F12_ONE
    naf = _naf_digits(e)
    if len(naf) == 1:
        return a
    nonzero = sum(1 for digit in naf if digit)
    if nonzero * _COMPRESSED_SPARSITY > len(naf):
        return _cyclotomic_exp_wnaf(a, e)
    chain = f12_compress(a)
    needed = {}
    for position in range(1, len(naf)):
        chain = f12_compressed_sqr(chain)
        if naf[position]:
            needed[position] = chain
    decompressed = f12_decompress_batch(list(needed.values())) \
        if needed else []
    if needed and decompressed is None:
        # Degenerate determinant (identity or an F_p4 sub-line element):
        # the uncompressed Granger-Scott ladder handles every case.
        return _cyclotomic_exp_gs(a, naf)
    powers = dict(zip(needed.keys(), decompressed))
    result = None
    if naf[0]:
        result = a if naf[0] == 1 else f12_conj(a)
    for position, value in powers.items():
        term = value if naf[position] == 1 else f12_conj(value)
        result = term if result is None else f12_mul(result, term)
    return result
