"""Lagrange interpolation over Z_p.

``lagrange_coefficients`` returns the coefficients Δ_{i,S}(x) the paper uses
for "Lagrange interpolation in the exponent" during Combine: given partial
signatures from a set S of t+1 servers, the full signature is
``prod_i sigma_i ** Δ_{i,S}(0)``.

The denominators are inverted with Montgomery's batch-inversion trick
(:func:`batch_invert`): one ``pow(x, -1, p)`` per coefficient set instead of
one per index, which matters because a modular inversion costs tens of
multiplications.  ``reconstruct_master_key`` and ``interpolate_at`` reuse
the same path.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ParameterError


def batch_invert(values: Sequence[int], modulus: int) -> List[int]:
    """Invert every value modulo ``modulus`` with one modular inversion.

    Montgomery's trick: build the prefix products, invert the total, then
    walk backwards peeling one inverse off per step.  Raises
    :class:`ParameterError` if any value is zero modulo the modulus.
    """
    values = [value % modulus for value in values]
    prefix: List[int] = []
    acc = 1
    for value in values:
        if value == 0:
            raise ParameterError("cannot invert zero")
        acc = acc * value % modulus
        prefix.append(acc)
    inverses = [0] * len(values)
    inv_acc = pow(acc, -1, modulus)
    for i in range(len(values) - 1, -1, -1):
        before = prefix[i - 1] if i else 1
        inverses[i] = before * inv_acc % modulus
        inv_acc = inv_acc * values[i] % modulus
    return inverses


def lagrange_coefficients(indices: Iterable[int], modulus: int,
                          x: int = 0) -> Dict[int, int]:
    """Return {i: Δ_{i,S}(x) mod p} for the index set S = ``indices``.

    Indices must be distinct and non-zero modulo p (player indices are
    1-based precisely so that x=0 recovers the secret).
    """
    points = list(indices)
    if len(set(p % modulus for p in points)) != len(points):
        raise ParameterError("duplicate interpolation indices")
    numerators = []
    denominators = []
    for i in points:
        numerator, denominator = 1, 1
        for j in points:
            if j == i:
                continue
            numerator = numerator * ((x - j) % modulus) % modulus
            denominator = denominator * ((i - j) % modulus) % modulus
        if denominator == 0:
            raise ParameterError("indices collide modulo p")
        numerators.append(numerator)
        denominators.append(denominator)
    inverses = batch_invert(denominators, modulus)
    return {
        i: numerator * inverse % modulus
        for i, numerator, inverse in zip(points, numerators, inverses)
    }


@lru_cache(maxsize=1024)
def lagrange_at_zero(indices: Tuple[int, ...], modulus: int
                     ) -> Dict[int, int]:
    """Memoized ``{i: Δ_{i,S}(0)}`` for a signer set given as a tuple.

    Combine re-derives the same coefficient set for every signature
    produced by a stable quorum; the coefficients depend only on the
    index set, so they are cached per (sorted) set.  Callers must treat
    the returned dict as read-only.
    """
    return lagrange_coefficients(sorted(indices), modulus)


def interpolate_at(shares: Mapping[int, int], modulus: int, x: int = 0) -> int:
    """Interpolate the polynomial value at ``x`` from {index: share} points."""
    if not shares:
        raise ParameterError("no shares to interpolate")
    coeffs = lagrange_coefficients(shares.keys(), modulus, x)
    total = 0
    for i, share in shares.items():
        total = (total + coeffs[i] * share) % modulus
    return total
