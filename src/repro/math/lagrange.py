"""Lagrange interpolation over Z_p.

``lagrange_coefficients`` returns the coefficients Δ_{i,S}(x) the paper uses
for "Lagrange interpolation in the exponent" during Combine: given partial
signatures from a set S of t+1 servers, the full signature is
``prod_i sigma_i ** Δ_{i,S}(0)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.errors import ParameterError


def lagrange_coefficients(indices: Iterable[int], modulus: int,
                          x: int = 0) -> Dict[int, int]:
    """Return {i: Δ_{i,S}(x) mod p} for the index set S = ``indices``.

    Indices must be distinct and non-zero modulo p (player indices are
    1-based precisely so that x=0 recovers the secret).
    """
    points = list(indices)
    if len(set(p % modulus for p in points)) != len(points):
        raise ParameterError("duplicate interpolation indices")
    coeffs: Dict[int, int] = {}
    for i in points:
        numerator, denominator = 1, 1
        for j in points:
            if j == i:
                continue
            numerator = numerator * ((x - j) % modulus) % modulus
            denominator = denominator * ((i - j) % modulus) % modulus
        if denominator == 0:
            raise ParameterError("indices collide modulo p")
        coeffs[i] = numerator * pow(denominator, -1, modulus) % modulus
    return coeffs


def interpolate_at(shares: Mapping[int, int], modulus: int, x: int = 0) -> int:
    """Interpolate the polynomial value at ``x`` from {index: share} points."""
    if not shares:
        raise ParameterError("no shares to interpolate")
    coeffs = lagrange_coefficients(shares.keys(), modulus, x)
    total = 0
    for i, share in shares.items():
        total = (total + coeffs[i] * share) % modulus
    return total
