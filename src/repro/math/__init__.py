"""Algebraic substrate: prime fields, extension towers, polynomials.

This package is self-contained (no third-party dependencies) and provides
everything the curve and protocol layers need:

* :mod:`repro.math.field` — generic prime field `F_p` elements.
* :mod:`repro.math.tower` — the BN254 tower `F_p2 / F_p6 / F_p12`.
* :mod:`repro.math.polynomial` — polynomials over `Z_p` used by secret sharing.
* :mod:`repro.math.lagrange` — Lagrange coefficients (also "in the exponent").
* :mod:`repro.math.rng` — deterministic randomness helpers for protocols/tests.
"""

from repro.math.field import Fp
from repro.math.polynomial import Polynomial
from repro.math.lagrange import lagrange_coefficients, interpolate_at

__all__ = ["Fp", "Polynomial", "lagrange_coefficients", "interpolate_at"]
