"""Randomness helpers.

Protocols accept an optional ``rng`` (a ``random.Random``) so that tests and
benchmarks are reproducible; when it is ``None`` the library falls back to
``secrets`` for cryptographic randomness.  ``hash_to_int`` is the only
random-oracle-style primitive shared across modules.
"""

from __future__ import annotations

import hashlib
import secrets


def random_scalar(modulus: int, rng=None) -> int:
    """Uniform scalar in [0, modulus); deterministic when ``rng`` is given."""
    if rng is None:
        return secrets.randbelow(modulus)
    return rng.randrange(modulus)


def random_nonzero_scalar(modulus: int, rng=None) -> int:
    """Uniform scalar in [1, modulus)."""
    while True:
        value = random_scalar(modulus, rng)
        if value != 0:
            return value


def hash_to_int(domain: str, data: bytes, modulus: int) -> int:
    """Hash ``data`` into [0, modulus) with a domain-separation tag.

    Implements the standard expand-then-reduce construction: enough SHA-256
    blocks are concatenated to make the modulo bias negligible (128 extra
    bits).
    """
    target_bits = modulus.bit_length() + 128
    blocks = (target_bits + 255) // 256
    output = b""
    for counter in range(blocks):
        h = hashlib.sha256()
        h.update(domain.encode("utf-8"))
        h.update(counter.to_bytes(4, "big"))
        h.update(data)
        output += h.digest()
    return int.from_bytes(output, "big") % modulus


def hash_bytes(domain: str, data: bytes, length: int = 32) -> bytes:
    """Domain-separated variable-length hash (SHA-256 in counter mode)."""
    output = b""
    counter = 0
    while len(output) < length:
        h = hashlib.sha256()
        h.update(domain.encode("utf-8"))
        h.update(counter.to_bytes(4, "big"))
        h.update(data)
        output += h.digest()
        counter += 1
    return output[:length]
