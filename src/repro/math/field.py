"""Generic prime-field arithmetic.

The hot paths of the pairing work directly on Python integers for speed; this
class exists for the protocol layer (shares, scalars, polynomial algebra),
where clarity matters more than raw throughput.
"""

from __future__ import annotations

import secrets


class Fp:
    """An element of the prime field F_p.

    Instances are immutable.  Arithmetic between elements of different
    fields raises ``ValueError``; integers are coerced into the field of the
    other operand, which keeps protocol code readable
    (``share * 2``, ``x - 1`` and so on).
    """

    __slots__ = ("value", "modulus")

    def __init__(self, value: int, modulus: int):
        if modulus <= 1:
            raise ValueError("modulus must be a prime > 1")
        object.__setattr__(self, "modulus", modulus)
        object.__setattr__(self, "value", value % modulus)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Fp elements are immutable")

    # -- helpers ---------------------------------------------------------
    @classmethod
    def random(cls, modulus: int, rng=None) -> "Fp":
        """Sample a uniformly random field element.

        ``rng`` may be a ``random.Random`` (deterministic tests) or ``None``
        for a cryptographically secure sample.
        """
        if rng is None:
            return cls(secrets.randbelow(modulus), modulus)
        return cls(rng.randrange(modulus), modulus)

    @classmethod
    def zero(cls, modulus: int) -> "Fp":
        return cls(0, modulus)

    @classmethod
    def one(cls, modulus: int) -> "Fp":
        return cls(1, modulus)

    def _coerce(self, other) -> "Fp":
        if isinstance(other, Fp):
            if other.modulus != self.modulus:
                raise ValueError("field mismatch")
            return other
        if isinstance(other, int):
            return Fp(other, self.modulus)
        return NotImplemented

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp(self.value + other.value, self.modulus)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp(self.value - other.value, self.modulus)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp(other.value - self.value, self.modulus)

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp(self.value * other.value, self.modulus)

    __rmul__ = __mul__

    def __neg__(self):
        return Fp(-self.value, self.modulus)

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __pow__(self, exponent: int):
        return Fp(pow(self.value, exponent, self.modulus), self.modulus)

    def inverse(self) -> "Fp":
        if self.value == 0:
            raise ZeroDivisionError("inverse of zero in F_p")
        return Fp(pow(self.value, -1, self.modulus), self.modulus)

    # -- comparisons / hashing -------------------------------------------
    def __eq__(self, other):
        if isinstance(other, int):
            return self.value == other % self.modulus
        return (
            isinstance(other, Fp)
            and self.modulus == other.modulus
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.value, self.modulus))

    def __int__(self):
        return self.value

    def __bool__(self):
        return self.value != 0

    def __repr__(self):
        return f"Fp({self.value})"


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol (a/p) in {-1, 0, 1} for odd prime p."""
    a %= p
    if a == 0:
        return 0
    symbol = pow(a, (p - 1) // 2, p)
    return -1 if symbol == p - 1 else symbol


def sqrt_mod(a: int, p: int) -> int | None:
    """Return a square root of ``a`` modulo odd prime ``p``, or None.

    Uses the fast `p % 4 == 3` exponentiation when available (true for the
    BN254 base field) and Tonelli-Shanks otherwise.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p % 4 == 1.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2i, i = t, 0
        for i in range(1, m):
            t2i = t2i * t2i % p
            if t2i == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r
