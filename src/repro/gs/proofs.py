"""Commitments and NIWI proofs for linear pairing-product equations.

Equation shape (all the paper needs):

    prod_j e(X_j, B_hat_j) * e(P, Q_hat) = 1

with G-side variables X_j, public G_hat constants B_hat_j and a public
"target" pair (P, Q_hat).  Commitments under a CRS (f, f_M):

    C_j = (1, X_j) * f^{nu_{j,1}} * f_M^{nu_{j,2}}      (componentwise)

Proof (two G_hat elements):

    pi_1 = prod_j B_hat_j^{-nu_{j,1}},  pi_2 = prod_j B_hat_j^{-nu_{j,2}}

Verification, componentwise over the two coordinates of G^2:

    coord 0:  prod_j e(C_j[0], B_hat_j) * e(f[0], pi_1) * e(f_M[0], pi_2) = 1
    coord 1:  prod_j e(C_j[1], B_hat_j) * e(f[1], pi_1) * e(f_M[1], pi_2)
                                        * e(P, Q_hat) = 1

Everything is linear in the randomness, which gives (a) perfect
randomizability and (b) Lagrange combinability: raising commitments and
proofs of the same statement-shape to interpolation coefficients yields a
valid proof for the interpolated statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.gs.crs import MessageCRS
from repro.math.rng import random_scalar


@dataclass(frozen=True)
class GSCommitment:
    """A commitment in G^2 to one G-side variable."""

    c0: GroupElement
    c1: GroupElement

    def op(self, other: "GSCommitment") -> "GSCommitment":
        return GSCommitment(self.c0 * other.c0, self.c1 * other.c1)

    def exp(self, scalar: int) -> "GSCommitment":
        return GSCommitment(self.c0 ** scalar, self.c1 ** scalar)

    def to_bytes(self) -> bytes:
        return self.c0.to_bytes() + self.c1.to_bytes()


@dataclass(frozen=True)
class GSProof:
    """The two G_hat proof elements (pi_1, pi_2)."""

    pi1: GroupElement
    pi2: GroupElement

    def op(self, other: "GSProof") -> "GSProof":
        return GSProof(self.pi1 * other.pi1, self.pi2 * other.pi2)

    def exp(self, scalar: int) -> "GSProof":
        return GSProof(self.pi1 ** scalar, self.pi2 ** scalar)

    def to_bytes(self) -> bytes:
        return self.pi1.to_bytes() + self.pi2.to_bytes()


def commit(crs: MessageCRS, value: GroupElement, nu1: int,
           nu2: int, group: BilinearGroup | None = None) -> GSCommitment:
    """``(1, X) * f^{nu1} * f_M^{nu2}``.

    With a ``group`` handle each coordinate is one 2-base
    multi-exponentiation (shared doubling chain) instead of two ladders
    and a product.
    """
    f0, f1 = crs.f
    m0, m1 = crs.f_m
    if group is not None:
        return GSCommitment(
            c0=group.multi_exp([f0, m0], [nu1, nu2]),
            c1=value * group.multi_exp([f1, m1], [nu1, nu2]),
        )
    return GSCommitment(
        c0=(f0 ** nu1) * (m0 ** nu2),
        c1=value * (f1 ** nu1) * (m1 ** nu2),
    )


def prove_linear(constants: Sequence[GroupElement],
                 randomness: Sequence[Tuple[int, int]],
                 group: BilinearGroup | None = None) -> GSProof:
    """NIWI proof from the constants and the commitment randomness.

    With a ``group`` handle each proof element is one multi-exponentiation
    over all constants.
    """
    if len(constants) != len(randomness):
        raise ParameterError("one randomness pair per committed variable")
    if group is not None and constants:
        return GSProof(
            pi1=group.multi_exp(
                list(constants), [-nu1 for nu1, _nu2 in randomness]),
            pi2=group.multi_exp(
                list(constants), [-nu2 for _nu1, nu2 in randomness]),
        )
    pi1 = pi2 = None
    for b_hat, (nu1, nu2) in zip(constants, randomness):
        term1 = b_hat ** (-nu1)
        term2 = b_hat ** (-nu2)
        pi1 = term1 if pi1 is None else pi1 * term1
        pi2 = term2 if pi2 is None else pi2 * term2
    return GSProof(pi1=pi1, pi2=pi2)


def verify_linear(group: BilinearGroup, crs: MessageCRS,
                  commitments: Sequence[GSCommitment],
                  constants: Sequence[GroupElement],
                  target: Tuple[GroupElement, GroupElement],
                  proof: GSProof) -> bool:
    """Check both coordinate equations (two multi-pairings)."""
    if len(commitments) != len(constants):
        return False
    target_p, target_q = target
    coord0 = [(c.c0, b_hat) for c, b_hat in zip(commitments, constants)]
    coord0 += [(crs.f[0], proof.pi1), (crs.f_m[0], proof.pi2)]
    if not group.pairing_product_is_one(coord0):
        return False
    coord1 = [(c.c1, b_hat) for c, b_hat in zip(commitments, constants)]
    coord1 += [(crs.f[1], proof.pi1), (crs.f_m[1], proof.pi2),
               (target_p, target_q)]
    return group.pairing_product_is_one(coord1)


def randomize(group: BilinearGroup, crs: MessageCRS,
              commitments: Sequence[GSCommitment],
              constants: Sequence[GroupElement],
              proof: GSProof, rng=None
              ) -> Tuple[List[GSCommitment], GSProof]:
    """Perfectly re-randomize commitments and proof (Belenkiy et al.).

    Fresh randomness (delta_{j,1}, delta_{j,2}) is folded into each
    commitment and the proof is adjusted accordingly; the output is
    distributed exactly like a freshly generated proof of the same
    statement.  Combine uses this so a combined signature is
    indistinguishable from a directly generated one.
    """
    order = group.order
    new_commitments: List[GSCommitment] = []
    f0, f1 = crs.f
    m0, m1 = crs.f_m
    deltas = [
        (random_scalar(order, rng), random_scalar(order, rng))
        for _ in commitments
    ]
    for commitment, (delta1, delta2) in zip(commitments, deltas):
        new_commitments.append(GSCommitment(
            c0=commitment.c0 * group.multi_exp([f0, m0], [delta1, delta2]),
            c1=commitment.c1 * group.multi_exp([f1, m1], [delta1, delta2]),
        ))
    pi1 = proof.pi1
    pi2 = proof.pi2
    if deltas:
        pi1 = pi1 * group.multi_exp(
            list(constants), [-delta1 for delta1, _delta2 in deltas])
        pi2 = pi2 * group.multi_exp(
            list(constants), [-delta2 for _delta1, delta2 in deltas])
    return new_commitments, GSProof(pi1=pi1, pi2=pi2)
