"""Groth-Sahai common reference strings with per-message assembly.

The public parameters contain vectors ``f = (f, h)`` and
``f_0, ..., f_L`` in G^2.  For an L-bit message M, the signer assembles

    f_M = f_0 * prod_{i: M[i]=1} f_i        (componentwise)

and uses the two-vector CRS ``(f, f_M)``.  With overwhelming probability
``(f, f_M)`` is linearly independent — a perfectly *hiding* (witness
indistinguishable) CRS — while the security proof partitions messages so
the forgery lands on a perfectly *binding* one (Appendix H, games 1-3).

All vectors are derived from a random oracle, so the parameters carry no
trapdoor and can be shared by many public keys (Section 1: "a set of
uniformly random common parameters ... set up beforehand").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.rng import hash_bytes

#: Pairs (A, B) of G elements represent the 2-vectors of G^2.
GVector = Tuple[GroupElement, GroupElement]


def message_to_bits(message: bytes, length: int) -> List[int]:
    """Map an arbitrary message to the L-bit string the scheme signs.

    The paper signs messages in {0,1}^L; arbitrary-length input is first
    compressed through a hash (standard domain extension).
    """
    digest = hash_bytes("gs:msgbits", message, (length + 7) // 8)
    bits = []
    for i in range(length):
        bits.append((digest[i // 8] >> (7 - i % 8)) & 1)
    return bits


@dataclass(frozen=True)
class MessageCRS:
    """The two-vector CRS ``(f, f_M)`` for one message."""

    f: GVector
    f_m: GVector


@dataclass(frozen=True)
class GSParams:
    """The vectors ``f`` and ``f_0..f_L`` plus the message length L."""

    group: BilinearGroup
    f: GVector
    f_is: Tuple[GVector, ...]   # f_0 .. f_L
    bit_length: int

    @classmethod
    def generate(cls, group: BilinearGroup, bit_length: int = 128,
                 label: str = "LJY14:gs") -> "GSParams":
        """Random-oracle-derived parameters (no trapdoor known to anyone)."""
        if bit_length < 1:
            raise ParameterError("bit_length must be positive")
        f = (group.derive_g1(f"{label}:f:0"), group.derive_g1(f"{label}:f:1"))
        f_is = tuple(
            (group.derive_g1(f"{label}:f{i}:0"),
             group.derive_g1(f"{label}:f{i}:1"))
            for i in range(bit_length + 1)
        )
        return cls(group=group, f=f, f_is=f_is, bit_length=bit_length)

    def crs_for_message(self, message: bytes) -> MessageCRS:
        """Assemble ``f_M = f_0 * prod f_i^{M[i]}``."""
        bits = message_to_bits(message, self.bit_length)
        a, b = self.f_is[0]
        for i, bit in enumerate(bits, start=1):
            if bit:
                f_i = self.f_is[i]
                a = a * f_i[0]
                b = b * f_i[1]
        return MessageCRS(f=self.f, f_m=(a, b))

    def crs_for_bits(self, bits: Sequence[int]) -> MessageCRS:
        """Assemble the CRS from explicit bits (used by tests/ablation)."""
        if len(bits) != self.bit_length:
            raise ParameterError("bit vector has the wrong length")
        a, b = self.f_is[0]
        for i, bit in enumerate(bits, start=1):
            if bit:
                f_i = self.f_is[i]
                a = a * f_i[0]
                b = b * f_i[1]
        return MessageCRS(f=self.f, f_m=(a, b))
