"""Groth-Sahai NIWI proofs for linear pairing-product equations (SXDH).

Implements exactly the fragment the paper needs (Appendix A):

* commitments to G-side variables under a two-vector CRS ``(f, f_M)``
  where ``f_M`` is assembled from the bits of the message being signed
  (the Malkin et al. technique used in Section 4);
* NIWI proofs for *linear* equations ``prod_j e(X_j, B_hat_j) * e(P, Q_hat)
  = 1`` with committed ``X_j`` and public constants;
* perfect randomizability (Belenkiy et al.), used by Combine;
* the homomorphic property that commitments and proofs can be combined by
  Lagrange interpolation in the exponent — the key to non-interactive
  threshold signing in the standard model.
"""

from repro.gs.crs import GSParams, MessageCRS
from repro.gs.proofs import (
    GSCommitment, GSProof, commit, prove_linear, randomize, verify_linear,
)

__all__ = [
    "GSParams", "MessageCRS", "GSCommitment", "GSProof",
    "commit", "prove_linear", "verify_linear", "randomize",
]
