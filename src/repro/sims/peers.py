"""Simulated nodes that run the *actual* protocol implementations.

Two families:

* :class:`RoundDrivenPeer` adapts any lockstep
  :class:`repro.net.player.Player` (the Pedersen DKG and reshare round
  machines) to asynchronous delivery.  The synchronous-rounds model the
  paper assumes is realized the way deployments realize it: **global
  round deadlines**.  Every peer processes round r's inbox at the same
  absolute virtual time, so honest peers agree on what "arrived in round
  r" means — the agreement precondition for the qualified set.  A peer
  that has received every expected deal message advances early (the
  common fast path); complaint and response rounds always wait for the
  deadline because their message counts are unknowable in advance.

* :class:`SignerPeer` / :class:`CombinerPeer` run the signing tier:
  the combiner ships each signer a real
  :class:`~repro.serialization.PartialSignJob` inside a v3 wire frame,
  the signer answers with a framed
  :class:`~repro.serialization.PartialSignOutcome`, and the combiner
  accumulates windows and drives
  :meth:`~repro.core.scheme.LJYThresholdScheme.combine_window` — the
  same bytes and the same entry points the TCP tier ships and calls,
  under simulated latency, bandwidth, loss, stragglers and forgers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.keys import PartialSignature
from repro.net.player import Player
from repro.net.simulator import Message
from repro.serialization import (
    FRAME_HEADER_BYTES, FRAME_KIND_JOB, FRAME_KIND_OUTCOME, PartialSignJob,
    PartialSignOutcome, SerializationError, WireCodec, decode_frame_header,
    encode_frame,
)
from repro.sims.kernel import SimulationError
from repro.sims.net import SimMessage, SimNet, SimPeer

#: Round layout shared with :mod:`repro.dkg.pedersen_dkg`.
ROUND_DEAL, ROUND_COMPLAIN, ROUND_RESPOND = 0, 1, 2


@dataclass(frozen=True)
class RoundSchedule:
    """Absolute virtual-time deadlines for the three DKG rounds.

    ``t_complain_us`` is when round-0 (deal) inboxes close and
    complaints go out; ``t_respond_us`` closes the complaint inboxes;
    ``t_finalize_us`` closes the response inboxes.  All peers share one
    schedule — that is what makes it a synchronous protocol.
    """

    t_complain_us: int
    t_respond_us: int
    t_finalize_us: int


class RoundDrivenPeer(SimPeer):
    """Drives one lockstep round-machine player over asynchronous links."""

    def __init__(self, peer_id, net: SimNet, player: Player,
                 schedule: RoundSchedule,
                 expected_deal_messages: Optional[int] = None,
                 on_finalize: Optional[Callable] = None,
                 peer_for_player: Optional[Callable] = None,
                 group_ids: Optional[Sequence] = None):
        super().__init__(peer_id, net)
        self.player = player
        self.schedule = schedule
        #: Early-advance threshold for the deal round (None disables —
        #: reshare peers have role-dependent expectations, and any lost
        #: message falls back to the deadline anyway).
        self.expected_deal = expected_deal_messages
        self.on_finalize = on_finalize
        #: Maps a protocol player index to its sim peer id (identity by
        #: default; the churn scenario runs reshare players on ids like
        #: ``("reshare", i)`` so they coexist with the signing tier).
        self.peer_for_player = peer_for_player or (lambda index: index)
        #: Peers this protocol instance broadcasts to (None = whole
        #: net).  Needed when the net also hosts unrelated peers.
        self.group_ids = list(group_ids) if group_ids is not None else None
        self.buffers: Dict[int, List[Message]] = {0: [], 1: [], 2: []}
        self.next_round = ROUND_DEAL
        self.deal_complete_us: Optional[int] = None
        self.saw_complaints = False
        self.finalized_at_us: Optional[int] = None
        self.result = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Run the deal round now and arm the global deadlines."""
        self._run_round(ROUND_DEAL, [])
        self.net.kernel.schedule_at(
            self.schedule.t_complain_us, self._deadline, ROUND_COMPLAIN)
        self.net.kernel.schedule_at(
            self.schedule.t_respond_us, self._deadline, ROUND_RESPOND)

    def _run_round(self, round_no: int, inbox: List[Message]) -> None:
        if round_no != self.next_round:
            raise SimulationError(
                f"peer {self.peer_id} ran round {round_no} out of order")
        self.next_round = round_no + 1
        self.player.record_round(inbox)
        for message in self.player.on_round(round_no, inbox):
            if message.sender != self.player.index:
                raise SimulationError(
                    f"player {self.player.index} forged sender "
                    f"{message.sender}")
            envelope = (round_no, message)
            if message.is_broadcast:
                # Broadcasts ride the paper's reliable broadcast channel
                # (Section 2.1): without it, lossy complaint/response
                # delivery would let honest peers disagree on the
                # qualified set.  Private shares stay lossy — a lost
                # share is exactly what the complaint round is for.
                if self.group_ids is None:
                    self.net.broadcast(self, message.kind, envelope,
                                       reliable=True)
                else:
                    size = self.net._size_of(envelope)
                    for peer_id in self.group_ids:
                        if peer_id != self.peer_id:
                            self.net.send(self, peer_id, message.kind,
                                          envelope, size_bytes=size,
                                          reliable=True)
                # The lockstep tier delivers broadcasts to the sender
                # too (see SyncNetwork._inbox_for); the round machines
                # rely on it — a complainer must count its own
                # complaint when judging the qualified set.
                self.buffers[round_no].append(message)
            else:
                self.send(self.peer_for_player(message.recipient),
                          message.kind, envelope)

    def _deadline(self, round_no: int) -> None:
        if round_no == ROUND_COMPLAIN:
            if self.next_round == ROUND_COMPLAIN:
                self._run_round(ROUND_COMPLAIN, self.buffers[ROUND_DEAL])
            return
        # Respond deadline: ingest complaints, publish responses.  When
        # this peer saw no complaints at all, no honest dealer owes a
        # response, so it finalizes without waiting out the respond
        # window — the paper's optimistic single-communication-round
        # case, surfaced as completion time.
        complaints = self.buffers[ROUND_COMPLAIN]
        self.saw_complaints = bool(complaints)
        self._run_round(ROUND_RESPOND, complaints)
        if self.saw_complaints:
            self.net.kernel.schedule_at(
                self.schedule.t_finalize_us, self._finalize)
        else:
            self._finalize()

    def _finalize(self) -> None:
        self.player.record_round(self.buffers[ROUND_RESPOND])
        self.result = self.player.finalize()
        self.finalized_at_us = self.net.kernel.now_us
        self.net.kernel.trace(f"finalize {self.peer_id}")
        if self.on_finalize is not None:
            self.on_finalize(self)

    # -- delivery -----------------------------------------------------------
    def receive(self, message: SimMessage) -> None:
        round_no, protocol_message = message.payload
        if self.peer_for_player(protocol_message.sender) != message.sender:
            raise SimulationError(
                f"envelope sender {message.sender} != protocol sender "
                f"{protocol_message.sender}")
        buffer = self.buffers.get(round_no)
        if buffer is None:
            return
        # A message for a round whose inbox already closed is late: it
        # missed its round, exactly as on a real deadline-driven WAN.
        if round_no < self.next_round - 1 or (
                round_no == ROUND_DEAL and self.next_round > ROUND_COMPLAIN):
            self.net.kernel.trace(
                f"late {self.peer_id}<-{message.sender} r{round_no}")
            return
        buffer.append(protocol_message)
        if (round_no == ROUND_DEAL and self.expected_deal is not None
                and len(buffer) == self.expected_deal):
            self.deal_complete_us = self.net.kernel.now_us
            if self.next_round == ROUND_COMPLAIN:
                self._run_round(ROUND_COMPLAIN, buffer)


# ---------------------------------------------------------------------------
# The signing tier
# ---------------------------------------------------------------------------

class SignerPeer(SimPeer):
    """Holds one private key share; answers framed PartialSignJobs."""

    def __init__(self, peer_id, net: SimNet, scheme, share,
                 codec: WireCodec, compute_delay_us: int = 0,
                 forge: bool = False):
        super().__init__(peer_id, net)
        self.scheme = scheme
        self.share = share
        self.codec = codec
        #: Straggler model: fixed extra signing latency.
        self.compute_delay_us = compute_delay_us
        #: Byzantine model: emit well-formed but invalid partials.
        self.forge = forge
        self.epoch = 0
        self.jobs_served = 0

    def install_share(self, share, epoch: int) -> None:
        """Swap in post-reshare key material (the epoch transition)."""
        self.share = share
        self.epoch = epoch

    def receive(self, message: SimMessage) -> None:
        kind, request_id, length = decode_frame_header(
            message.payload[:FRAME_HEADER_BYTES])
        if kind != FRAME_KIND_JOB:
            return
        job = self.codec.decode_job(message.payload[FRAME_HEADER_BYTES:])
        if not isinstance(job, PartialSignJob):
            return
        partial = self.scheme.share_sign(self.share, job.message)
        if self.forge:
            partial = PartialSignature(
                index=partial.index, z=partial.z * partial.z, r=partial.r)
        outcome = PartialSignOutcome(partials=(partial,))
        frame = encode_frame(FRAME_KIND_OUTCOME,
                             self.codec.encode_outcome(outcome),
                             request_id=request_id)
        self.jobs_served += 1
        epoch = self.epoch
        self.net.kernel.schedule(
            self.compute_delay_us, self.send, message.sender,
            f"outcome@{epoch}", frame, len(frame))


class _Request:
    __slots__ = ("message", "issued_us", "partials", "quorum_us",
                 "done_us", "signature", "retries", "queued")

    def __init__(self, message: bytes, issued_us: int):
        self.message = message
        self.issued_us = issued_us
        #: epoch -> {signer index -> PartialSignature}
        self.partials: Dict[int, Dict[int, PartialSignature]] = {}
        self.quorum_us: Optional[int] = None
        self.done_us: Optional[int] = None
        self.signature = None
        self.retries = 0
        self.queued = False


class CombinerPeer(SimPeer):
    """Fans sign requests out to every signer, accumulates windows and
    combines with the real batch entry points.

    Per-request flow: ship a framed job to all n signers (all of them —
    that is the robustness margin against loss and forgers), mark the
    request *ready* once t+1 distinct partials of one epoch arrived,
    flush ready requests ``window_size`` at a time (or on the window
    timeout) through ``combine_window``, and verify every produced
    signature.  A flagged position that could not recombine (stragglers
    still in flight) goes back to collecting and re-enters a later
    window.  Unanswered requests are retransmitted — loss recovery, as
    in any real RPC tier.
    """

    def __init__(self, peer_id, net: SimNet, scheme, public_key,
                 verification_keys, signer_ids: Sequence, codec: WireCodec,
                 rng, window_size: int = 8, window_timeout_us: int = 50_000,
                 retry_timeout_us: int = 2_000_000, max_retries: int = 5):
        super().__init__(peer_id, net)
        self.scheme = scheme
        self.public_key = public_key
        #: epoch -> VK mapping (reshare under load installs epoch 1).
        self.vks_by_epoch = {0: dict(verification_keys)}
        self.signer_ids = list(signer_ids)
        self.codec = codec
        self.rng = rng
        self.window_size = window_size
        self.window_timeout_us = window_timeout_us
        self.retry_timeout_us = retry_timeout_us
        #: Give up after this many retransmits so a request that can
        #: never complete (too many forgers) does not keep the kernel's
        #: heap alive forever.
        self.max_retries = max_retries
        self.requests: Dict[int, _Request] = {}
        self.ready: List[int] = []
        self._timer_armed = False
        self.windows_flushed = 0
        self.flagged_positions = 0
        self.rejected_blobs = 0
        self.verified = 0
        #: epoch -> signatures combined under that epoch's VKs (the
        #: churn scenario asserts both epochs produced signatures).
        self.signed_by_epoch: Dict[int, int] = {}

    # -- epochs -------------------------------------------------------------
    def install_epoch(self, epoch: int, verification_keys) -> None:
        self.vks_by_epoch[epoch] = dict(verification_keys)

    # -- issuing ------------------------------------------------------------
    def submit(self, request_id: int, message: bytes) -> None:
        request = _Request(message, self.net.kernel.now_us)
        self.requests[request_id] = request
        self._ship(request_id, request)
        self.net.kernel.schedule(self.retry_timeout_us, self._retry,
                                 request_id)

    def _ship(self, request_id: int, request: _Request) -> None:
        for signer_id in self.signer_ids:
            job = PartialSignJob(shard_id=0, message=request.message,
                                 signers=(signer_id,), epoch=0)
            frame = encode_frame(FRAME_KIND_JOB,
                                 self.codec.encode_job(job),
                                 request_id=request_id)
            self.send(signer_id, "job", frame, len(frame))

    def _retry(self, request_id: int) -> None:
        request = self.requests[request_id]
        if request.done_us is not None or request.retries >= self.max_retries:
            return
        request.retries += 1
        self.net.kernel.trace(f"retry req{request_id}")
        self._ship(request_id, request)
        self.net.kernel.schedule(self.retry_timeout_us, self._retry,
                                 request_id)

    # -- collection ---------------------------------------------------------
    def receive(self, message: SimMessage) -> None:
        frame = message.payload
        try:
            kind, request_id, _ = decode_frame_header(
                frame[:FRAME_HEADER_BYTES])
            if kind != FRAME_KIND_OUTCOME:
                return
            outcome = self.codec.decode_outcome(
                frame[FRAME_HEADER_BYTES:])
        except SerializationError:
            self.rejected_blobs += 1
            return
        if not isinstance(outcome, PartialSignOutcome):
            return
        request = self.requests.get(request_id)
        if request is None or request.done_us is not None:
            return
        epoch = int(message.kind.rsplit("@", 1)[1]) if "@" in message.kind \
            else 0
        bucket = request.partials.setdefault(epoch, {})
        for partial in outcome.partials:
            bucket.setdefault(partial.index, partial)
        if epoch not in self.vks_by_epoch:
            # Partials from an epoch whose VKs have not been installed
            # yet are held but cannot drive readiness.
            return
        needed = self.scheme.params.t + 1
        if request.quorum_us is None and len(bucket) >= needed:
            request.quorum_us = self.net.kernel.now_us
            self.net.kernel.trace(f"quorum req{request_id}")
        if len(bucket) >= needed and not request.queued:
            request.queued = True
            self.ready.append(request_id)
            self._maybe_flush()

    # -- windows ------------------------------------------------------------
    def _maybe_flush(self) -> None:
        if len(self.ready) >= self.window_size:
            self._flush()
        elif self.ready and not self._timer_armed:
            self._timer_armed = True
            self.net.kernel.schedule(self.window_timeout_us,
                                     self._timer_fire)

    def _timer_fire(self) -> None:
        self._timer_armed = False
        if self.ready:
            self._flush()

    def _best_epoch(self, request: _Request) -> int:
        needed = self.scheme.params.t + 1
        candidates = [
            epoch for epoch, bucket in request.partials.items()
            if len(bucket) >= needed and epoch in self.vks_by_epoch
        ]
        return max(candidates)

    def _flush(self) -> None:
        batch = self.ready[:self.window_size]
        del self.ready[:len(batch)]
        self.windows_flushed += 1
        by_epoch: Dict[int, List[int]] = {}
        for request_id in batch:
            request = self.requests[request_id]
            request.queued = False
            by_epoch.setdefault(self._best_epoch(request), []).append(
                request_id)
        for epoch, request_ids in sorted(by_epoch.items()):
            windows = [
                (self.requests[rid].message,
                 list(self.requests[rid].partials[epoch].values()))
                for rid in request_ids
            ]
            signatures, flagged = self.scheme.combine_window(
                self.public_key, self.vks_by_epoch[epoch], windows,
                rng=self.rng)
            self.flagged_positions += len(flagged)
            for rid, signature in zip(request_ids, signatures):
                request = self.requests[rid]
                if signature is not None and self.scheme.verify(
                        self.public_key, request.message, signature):
                    self.verified += 1
                    self.signed_by_epoch[epoch] = (
                        self.signed_by_epoch.get(epoch, 0) + 1)
                    request.signature = signature
                    request.done_us = self.net.kernel.now_us
                    self.net.kernel.trace(f"signed req{rid}")
                # else: not enough valid shares yet — the request stays
                # in collecting state and re-queues on the next partial
                # (stragglers and retransmits are still in flight).
        # Leftover ready requests (arrivals during the flush, or more
        # than one window's worth) must not strand without a timer.
        self._maybe_flush()

    # -- results ------------------------------------------------------------
    def completed(self) -> List[int]:
        return [rid for rid, request in self.requests.items()
                if request.done_us is not None]

    def latencies_ms(self) -> Dict[str, List[float]]:
        quorum = [
            (request.quorum_us - request.issued_us) / 1000.0
            for request in self.requests.values()
            if request.quorum_us is not None
        ]
        done = [
            (request.done_us - request.issued_us) / 1000.0
            for request in self.requests.values()
            if request.done_us is not None
        ]
        return {"quorum_ms": quorum, "signed_ms": done}
