"""The discrete-event kernel: a heapq event loop over a virtual clock.

Dependency-free by design (no simpy — the repo's zero-dependency rule):
an event is ``(due_us, seq, callback, args)`` on a binary heap, time is
an **integer microsecond** counter (floats would accumulate rounding
differences across platforms and break byte-identical trace digests),
and every source of randomness is a single seeded :class:`random.Random`
owned by the kernel.  Nothing here reads the wall clock; a simulation's
behaviour is a pure function of its seed and its scenario parameters.

The kernel also owns the **event trace**: :meth:`EventKernel.trace`
feeds ``"{now_us} {line}\\n"`` into an incremental SHA-256.  The final
:meth:`EventKernel.digest` is the scenario's determinism witness — two
runs of the same scenario with the same seed must produce byte-identical
digests (``make sim-smoke`` runs the CI scenario twice and compares;
see ``docs/SIMULATION.md`` for the contract).
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError


class SimulationError(ReproError):
    """The simulation harness was driven incorrectly (e.g. an event
    scheduled in the past, or a scenario invariant violated)."""


class EventKernel:
    """Seed-deterministic discrete-event loop with a virtual µs clock."""

    def __init__(self, seed: int = 0, keep_trace_lines: bool = False):
        self.rng = random.Random(seed)
        self.now_us = 0
        self.events_run = 0
        self.events_traced = 0
        self._heap: List[Tuple[int, int, Callable, tuple]] = []
        self._seq = 0
        self._digest = hashlib.sha256()
        #: Full trace retention is opt-in: the digest is enough for the
        #: determinism gate, and big-n scenarios trace millions of lines.
        self.trace_lines: Optional[List[str]] = (
            [] if keep_trace_lines else None)

    # -- scheduling ---------------------------------------------------------
    def schedule_at(self, due_us: int, callback: Callable,
                    *args: Any) -> None:
        if due_us < self.now_us:
            raise SimulationError(
                f"cannot schedule at {due_us}us, clock is at {self.now_us}us")
        # The monotone sequence number makes heap ordering total, so
        # same-instant events fire in schedule order on every run.
        self._seq += 1
        heapq.heappush(self._heap, (due_us, self._seq, callback, args))

    def schedule(self, delay_us: int, callback: Callable,
                 *args: Any) -> None:
        self.schedule_at(self.now_us + max(0, int(delay_us)), callback,
                         *args)

    # -- the loop -----------------------------------------------------------
    def run(self, until_us: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the heap (bounded by ``until_us`` / ``max_events``);
        returns the number of events executed."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            due_us, _, callback, args = self._heap[0]
            if until_us is not None and due_us > until_us:
                break
            heapq.heappop(self._heap)
            self.now_us = due_us
            callback(*args)
            executed += 1
        self.events_run += executed
        return executed

    @property
    def pending(self) -> int:
        return len(self._heap)

    # -- the trace digest ---------------------------------------------------
    def trace(self, line: str) -> None:
        """Record one trace event at the current virtual time."""
        self._digest.update(f"{self.now_us} {line}\n".encode("utf-8"))
        self.events_traced += 1
        if self.trace_lines is not None:
            self.trace_lines.append(f"{self.now_us} {line}")

    def digest(self) -> str:
        """Hex digest over every trace line so far (order-sensitive)."""
        return self._digest.hexdigest()
