"""Per-link network models: latency distribution, bandwidth, loss.

A :class:`LinkProfile` describes one class of link; :class:`LinkModel`
applies it to every ordered peer pair, tracking per-peer uplink and
downlink **busy-until** cursors so bandwidth behaves like a serial pipe:
a broadcast to n-1 recipients pays n-1 back-to-back serializations
through the sender's uplink — exactly the effect loopback benches can
never see and the reason DKG time-to-completion grows with n even at
fixed latency.

Latency is ``base + Exp(jitter)`` per message (heavy-ish tail, cheap to
sample deterministically from the kernel's ``random.Random``); the WAN
model additionally places peers round-robin into three regions with a
fixed one-way base-latency matrix.  Loss is i.i.d. per message with the
profile's probability — a dropped message still consumes the sender's
uplink (it was sent; the network ate it).

All times are integer microseconds (see :mod:`repro.sims.kernel`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence


@dataclass(frozen=True)
class LinkProfile:
    """One class of link, in integer µs / bits-per-second."""

    latency_base_us: int
    latency_jitter_us: int
    uplink_bps: int
    downlink_bps: int
    loss: float = 0.0


#: Same-rack datacenter links: used by the deterministic CI scenario
#: where network variance is noise, not signal.
LAN_PROFILE = LinkProfile(
    latency_base_us=200, latency_jitter_us=50,
    uplink_bps=10_000_000_000, downlink_bps=10_000_000_000)

#: Commodity WAN: ~40 ms one-way base (overridden by the region matrix
#: when regions are enabled), asymmetric bandwidth.
WAN_PROFILE = LinkProfile(
    latency_base_us=40_000, latency_jitter_us=12_000,
    uplink_bps=200_000_000, downlink_bps=1_000_000_000)

#: One-way base latency (µs) between the three WAN regions
#: (us-east / eu-west / ap-south); diagonal = intra-region.
WAN_REGION_LATENCY_US = (
    (2_000, 42_000, 110_000),
    (42_000, 2_000, 75_000),
    (110_000, 75_000, 2_000),
)
WAN_REGIONS = len(WAN_REGION_LATENCY_US)


class LinkModel:
    """Latency/bandwidth/loss for every ordered pair of peers."""

    def __init__(self, profile: LinkProfile, rng: random.Random,
                 region_of: Optional[Dict[object, int]] = None,
                 region_latency_us: Sequence[Sequence[int]] = None):
        self.profile = profile
        self.rng = rng
        self.region_of = region_of or {}
        self.region_latency_us = region_latency_us
        #: Peers sharing a physical host share its bandwidth cursors
        #: (e.g. a node's reshare-dealer role contends with its signer
        #: role for the same uplink — "reshare under load").
        self.host_of: Dict[object, object] = {}
        self._uplink_free_us: Dict[object, int] = {}
        self._downlink_free_us: Dict[object, int] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- latency ------------------------------------------------------------
    def base_latency_us(self, src, dst) -> int:
        if self.region_latency_us is not None:
            return self.region_latency_us[
                self.region_of.get(src, 0)][self.region_of.get(dst, 0)]
        return self.profile.latency_base_us

    def sample_latency_us(self, src, dst) -> int:
        jitter = self.profile.latency_jitter_us
        extra = int(self.rng.expovariate(1.0 / jitter)) if jitter > 0 else 0
        return self.base_latency_us(src, dst) + extra

    # -- the pipe -----------------------------------------------------------
    @staticmethod
    def _tx_us(size_bytes: int, bps: int) -> int:
        # Integer ceiling of size*8 / bps in µs; keeps the clock integral.
        return -(-size_bytes * 8_000_000 // bps)

    def transfer(self, now_us: int, src, dst, size_bytes: int,
                 lossless: bool = False) -> Optional[int]:
        """Account one message through src's uplink and dst's downlink;
        returns the delivery time in µs, or ``None`` if the message was
        lost (uplink time is consumed either way).  ``lossless`` models
        a reliable channel (the paper's broadcast assumption): it skips
        the loss draw but still pays bandwidth and latency."""
        src_host = self.host_of.get(src, src)
        dst_host = self.host_of.get(dst, dst)
        tx = self._tx_us(size_bytes, self.profile.uplink_bps)
        start = max(now_us, self._uplink_free_us.get(src_host, 0))
        self._uplink_free_us[src_host] = start + tx
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if (not lossless and self.profile.loss > 0
                and self.rng.random() < self.profile.loss):
            self.messages_dropped += 1
            return None
        arrival = start + tx + self.sample_latency_us(src, dst)
        rx = self._tx_us(size_bytes, self.profile.downlink_bps)
        done = max(arrival, self._downlink_free_us.get(dst_host, 0)) + rx
        self._downlink_free_us[dst_host] = done
        return done


def assign_regions(peer_ids: Sequence,
                   regions: int = WAN_REGIONS) -> Dict[object, int]:
    """Round-robin peers into regions (deterministic in peer order)."""
    return {peer: i % regions for i, peer in enumerate(peer_ids)}


def make_link_model(profile_name: str, rng: random.Random,
                    peer_ids: Sequence, loss: float = 0.0) -> LinkModel:
    """A ready link model: ``"lan"`` (flat) or ``"wan"`` (3-region)."""
    if profile_name == "lan":
        profile = LAN_PROFILE
    elif profile_name == "wan":
        profile = WAN_PROFILE
    else:
        raise ValueError(f"unknown link profile {profile_name!r}")
    if loss:
        profile = LinkProfile(
            latency_base_us=profile.latency_base_us,
            latency_jitter_us=profile.latency_jitter_us,
            uplink_bps=profile.uplink_bps,
            downlink_bps=profile.downlink_bps,
            loss=loss)
    if profile_name == "wan":
        return LinkModel(profile, rng,
                         region_of=assign_regions(peer_ids),
                         region_latency_us=WAN_REGION_LATENCY_US)
    return LinkModel(profile, rng)
