"""The scenario catalog: end-to-end simulations over the real protocol.

Each ``run_*_scenario`` builds a fresh :class:`~repro.sims.kernel.
EventKernel` + :class:`~repro.sims.net.SimNet`, populates it with peers
that execute the repo's actual protocol implementations (the Pedersen
DKG and reshare round machines, ``share_sign`` / ``combine_window``
over real :class:`~repro.serialization.WireCodec` frames), runs to
quiescence, asserts the protocol-level invariants (honest agreement,
signatures verify) and returns a flat row of metrics plus the kernel's
trace digest — the determinism witness ``make sim-smoke`` compares
across processes.

Scenarios (see ``docs/SIMULATION.md`` for the catalog rationale):

========== ===========================================================
``dkg``     Dist-Keygen time-to-completion at large n over a 3-region
            WAN; lossy private channels exercise complaint/respond.
``quorum``  time-to-quorum for signing at n = 64/256/1024 under WAN
            latency and loss (open-loop exponential arrivals).
``robust``  robust combine under heavy loss + stragglers + forgers —
            every request must still produce a verifying signature.
``churn``   reshare to a shifted committee *under signing load* with
            an atomic epoch switch, plus the shard-ring remap cost.
``ci``      small fixed-seed composite (dkg n=64 + robust) gating CI.
========== ===========================================================

Everything here is a pure function of ``(scenario, seed, parameters)``:
all randomness flows from seeded :class:`random.Random` instances
(string seeds are hashed with SHA-512 by CPython, independent of
``PYTHONHASHSEED``), the clock is virtual, and no wall-clock time or
filesystem state leaks into results or digests.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence

from repro.core.keys import (
    PrivateKeyShare, ThresholdParams, VerificationKey,
)
from repro.core.scheme import LJYThresholdScheme
from repro.dkg.pedersen_dkg import PedersenDKGPlayer, dkg_result_to_keys
from repro.dkg.reshare import ResharePlayer
from repro.groups import get_group
from repro.serialization import WireCodec
from repro.service.loadgen import percentile
from repro.service.shards import HashRing
from repro.sims.kernel import EventKernel, SimulationError
from repro.sims.links import LinkModel, make_link_model
from repro.sims.net import SimNet
from repro.sims.peers import (
    ROUND_COMPLAIN, CombinerPeer, RoundDrivenPeer, RoundSchedule, SignerPeer,
)

#: Fixed per-signature compute time charged by every simulated signer
#: (stragglers add on top); roughly a bn254 Share-Sign on one core.
SIGN_COMPUTE_US = 2_000


def _rng(seed: int, *tags) -> random.Random:
    """An independent deterministic stream named by its tags."""
    return random.Random(":".join([str(seed)] + [str(tag) for tag in tags]))


def _max_base_latency_us(links: LinkModel) -> int:
    if links.region_latency_us is not None:
        return max(max(row) for row in links.region_latency_us)
    return links.profile.latency_base_us


def _round_window_us(links: LinkModel, n: int, t: int,
                     start_us: int = 0) -> RoundSchedule:
    """Analytic global round deadlines for one DKG/reshare execution.

    The deal round's wall time is dominated by each dealer serializing
    n-1 dealing copies through its uplink; the window doubles that plus
    a generous latency/jitter tail, so under the configured loss rate
    essentially every surviving message makes its round.  (A message
    that misses anyway just becomes a complaint — correctness never
    depends on the estimate, only the reported times do.)
    """
    commit_bytes = 2 * (t + 1) * 32 + 96
    share_bytes = 4 * 32 + 96
    per_dealer = (n - 1) * (commit_bytes + share_bytes)
    tx_us = LinkModel._tx_us(per_dealer, links.profile.uplink_bps)
    rx_us = LinkModel._tx_us(per_dealer, links.profile.downlink_bps)
    tail_us = _max_base_latency_us(links) + 8 * links.profile.latency_jitter_us
    window = 2 * (tx_us + rx_us + tail_us) + 100_000
    return RoundSchedule(
        t_complain_us=start_us + window,
        t_respond_us=start_us + 2 * window,
        t_finalize_us=start_us + 3 * window,
    )


# ---------------------------------------------------------------------------
# DKG at scale
# ---------------------------------------------------------------------------

def run_dkg_scenario(seed: int, n: int, t: int, profile: str = "wan",
                     loss: float = 0.0, group_name: str = "toy") -> Dict:
    """Dist-Keygen with n peers over simulated links.

    Every honest peer must finalize, agree on the qualified set, the
    public key and all verification keys, and a quorum of the resulting
    shares must produce a verifying signature — the scenario raises
    :class:`SimulationError` otherwise.
    """
    group = get_group(group_name)
    params = ThresholdParams.generate(group, t, n)
    scheme = LJYThresholdScheme(params)
    kernel = EventKernel(seed)
    peer_ids = list(range(1, n + 1))
    links = make_link_model(profile, kernel.rng, peer_ids, loss=loss)
    net = SimNet(kernel, links)
    schedule = _round_window_us(links, n, t)

    state = {
        "qualified": None, "publics": None, "vk_ref": None,
        "mismatches": 0, "finalized": 0, "complaints_seen": 0,
        "keys": None, "shares": [],
    }

    def on_finalize(peer: RoundDrivenPeer) -> None:
        result = peer.result
        state["finalized"] += 1
        state["complaints_seen"] = max(
            state["complaints_seen"], len(peer.buffers[ROUND_COMPLAIN]))
        if state["qualified"] is None:
            state["qualified"] = tuple(result.qualified)
            state["publics"] = list(result.public_components)
            state["vk_ref"] = result.verification_keys
        else:
            if (tuple(result.qualified) != state["qualified"]
                    or list(result.public_components) != state["publics"]
                    or result.verification_keys != state["vk_ref"]):
                state["mismatches"] += 1
        if len(state["shares"]) < t + 1:
            public_key, share, vks = dkg_result_to_keys(scheme, result)
            state["shares"].append(share)
            if state["keys"] is None:
                state["keys"] = (public_key, vks)
        # Free the bulk of the per-peer state: at n=1024 the n x n
        # dealing matrix is the memory high-water mark.
        peer.result = None
        peer.player._result = None
        peer.player.received_commitments.clear()
        peer.player.received_shares.clear()
        peer.player.dealings.clear()
        peer.player.history.clear()
        peer.player._column_cache.clear()
        peer.buffers = {0: [], 1: [], 2: []}

    peers = [
        RoundDrivenPeer(
            i, net,
            PedersenDKGPlayer(i, group, params.g_z, params.g_r, t, n,
                              rng=_rng(seed, "dkg-player", i)),
            schedule, expected_deal_messages=2 * n - 1,
            on_finalize=on_finalize)
        for i in peer_ids
    ]
    for peer in peers:
        kernel.schedule_at(0, peer.start)
    kernel.run()

    if state["finalized"] != n:
        raise SimulationError(
            f"only {state['finalized']}/{n} peers finalized the DKG")
    if state["mismatches"]:
        raise SimulationError(
            f"{state['mismatches']} peers disagreed on the DKG output")

    # End-to-end: the distributively-generated shares must sign.
    public_key, vks = state["keys"]
    message = b"sim-dkg:%d:%d" % (seed, n)
    partials = [scheme.share_sign(share, message)
                for share in state["shares"]]
    signature = scheme.combine(public_key, vks, message, partials,
                               rng=_rng(seed, "dkg-combine"))
    if not scheme.verify(public_key, message, signature):
        raise SimulationError("DKG-derived signature failed to verify")

    deal_ms = [peer.deal_complete_us / 1000.0 for peer in peers
               if peer.deal_complete_us is not None]
    finalize_ms = max(peer.finalized_at_us for peer in peers) / 1000.0
    return {
        "scenario": "dkg", "seed": seed, "n": n, "t": t,
        "profile": profile, "loss": loss,
        "deal_p50_ms": percentile(deal_ms, 50) if deal_ms else float("nan"),
        "deal_p95_ms": percentile(deal_ms, 95) if deal_ms else float("nan"),
        "deal_done": len(deal_ms),
        "finalize_ms": finalize_ms,
        "complaints": state["complaints_seen"],
        "qualified": len(state["qualified"]),
        "messages": net.traffic.messages,
        "drops": net.drops,
        "mbytes": net.traffic.bytes_total / 1e6,
        "events": kernel.events_run,
        "digest": kernel.digest(),
    }


# ---------------------------------------------------------------------------
# The signing tier (shared by quorum / robust / churn)
# ---------------------------------------------------------------------------

def _signing_net(seed: int, n: int, profile: str, loss: float):
    kernel = EventKernel(seed)
    signer_ids = list(range(1, n + 1))
    links = make_link_model(profile, kernel.rng, ["combiner"] + signer_ids,
                            loss=loss)
    return kernel, SimNet(kernel, links), signer_ids


def _schedule_arrivals(kernel: EventKernel, combiner: CombinerPeer,
                       seed: int, label: str, requests: int,
                       mean_interval_us: int) -> None:
    """Open-loop arrivals: exponential inter-arrival times drawn from a
    dedicated stream so load is independent of network randomness."""
    arrivals = _rng(seed, label, "arrivals")
    at_us = 0
    for request_id in range(requests):
        at_us += int(arrivals.expovariate(1.0 / mean_interval_us))
        kernel.schedule_at(at_us, combiner.submit, request_id,
                           b"%s:%d:req:%d" % (
                               label.encode("ascii"), seed, request_id))


def _signing_row(label: str, combiner: CombinerPeer, net: SimNet,
                 kernel: EventKernel, requests: int) -> Dict:
    done = combiner.completed()
    if len(done) != requests:
        raise SimulationError(
            f"{label}: only {len(done)}/{requests} requests signed")
    lat = combiner.latencies_ms()
    retries = sum(r.retries for r in combiner.requests.values())
    return {
        "scenario": label,
        "requests": requests,
        "quorum_p50_ms": percentile(lat["quorum_ms"], 50),
        "quorum_p95_ms": percentile(lat["quorum_ms"], 95),
        "signed_p50_ms": percentile(lat["signed_ms"], 50),
        "signed_p95_ms": percentile(lat["signed_ms"], 95),
        "signed_max_ms": max(lat["signed_ms"]),
        "windows": combiner.windows_flushed,
        "flagged": combiner.flagged_positions,
        "rejected": combiner.rejected_blobs,
        "retries": retries,
        "messages": net.traffic.messages,
        "drops": net.drops,
        "mbytes": net.traffic.bytes_total / 1e6,
        "events": kernel.events_run,
        "digest": kernel.digest(),
    }


def run_quorum_scenario(seed: int, n_values: Sequence[int] = (64, 256, 1024),
                        t: int = 16, requests: int = 32,
                        profile: str = "wan", loss: float = 0.01,
                        mean_interval_us: int = 20_000,
                        group_name: str = "toy") -> Dict:
    """Time-to-quorum (t+1 distinct partials back at the combiner) as a
    function of committee size, under WAN latency and light loss."""
    group = get_group(group_name)
    codec = WireCodec(group)
    rows: List[Dict] = []
    for n in n_values:
        params = ThresholdParams.generate(group, t, n)
        scheme = LJYThresholdScheme(params)
        public_key, shares, vks = scheme.dealer_keygen(
            rng=_rng(seed, "quorum-keys", n))
        kernel, net, signer_ids = _signing_net(seed, n, profile, loss)
        for i in signer_ids:
            SignerPeer(i, net, scheme, shares[i], codec,
                       compute_delay_us=SIGN_COMPUTE_US)
        combiner = CombinerPeer(
            "combiner", net, scheme, public_key, vks, signer_ids, codec,
            rng=_rng(seed, "quorum-combine", n))
        _schedule_arrivals(kernel, combiner, seed, f"quorum{n}",
                           requests, mean_interval_us)
        kernel.run()
        row = _signing_row("quorum", combiner, net, kernel, requests)
        row.update({"seed": seed, "n": n, "t": t,
                    "profile": profile, "loss": loss})
        rows.append(row)
    digest = hashlib.sha256(
        "".join(row["digest"] for row in rows).encode("ascii")).hexdigest()
    return {"scenario": "quorum", "seed": seed, "rows": rows,
            "digest": digest}


def run_robust_scenario(seed: int, n: int = 24, t: int = 5,
                        requests: int = 40, profile: str = "wan",
                        loss: float = 0.12, stragglers: int = 2,
                        straggler_delay_us: int = 300_000,
                        forgers: int = 2, mean_interval_us: int = 40_000,
                        group_name: str = "toy") -> Dict:
    """Robust combine under heavy loss, slow signers and forged partials.

    Forgers return well-formed but invalid partials, so the optimistic
    batch verify fails and ``combine_window`` falls back to per-share
    Share-Verify; stragglers keep valid partials in flight past the
    window timeout; loss forces retransmits.  Every request must still
    end with a verifying signature.
    """
    if n - forgers < t + 1:
        raise SimulationError("not enough honest signers to ever combine")
    group = get_group(group_name)
    codec = WireCodec(group)
    params = ThresholdParams.generate(group, t, n)
    scheme = LJYThresholdScheme(params)
    public_key, shares, vks = scheme.dealer_keygen(
        rng=_rng(seed, "robust-keys"))
    kernel, net, signer_ids = _signing_net(seed, n, profile, loss)
    forger_ids = set(signer_ids[:forgers])
    straggler_ids = set(signer_ids[-stragglers:]) if stragglers else set()
    for i in signer_ids:
        SignerPeer(
            i, net, scheme, shares[i], codec,
            compute_delay_us=(straggler_delay_us if i in straggler_ids
                              else SIGN_COMPUTE_US),
            forge=i in forger_ids)
    combiner = CombinerPeer(
        "combiner", net, scheme, public_key, vks, signer_ids, codec,
        rng=_rng(seed, "robust-combine"), retry_timeout_us=1_500_000,
        max_retries=8)
    _schedule_arrivals(kernel, combiner, seed, "robust", requests,
                       mean_interval_us)
    kernel.run()
    row = _signing_row("robust", combiner, net, kernel, requests)
    row.update({"seed": seed, "n": n, "t": t, "profile": profile,
                "loss": loss, "stragglers": stragglers, "forgers": forgers})
    return row


# ---------------------------------------------------------------------------
# Reshare / ring churn under load
# ---------------------------------------------------------------------------

def run_churn_scenario(seed: int, n: int = 16, t: int = 3,
                       requests: int = 36, profile: str = "wan",
                       loss: float = 0.02, mean_interval_us: int = 60_000,
                       reshare_start_us: int = 200_000,
                       shards_before: int = 4, shards_after: int = 6,
                       group_name: str = "toy") -> Dict:
    """Reshare to a shifted committee while signing load is in flight.

    The old committee is 1..n; the new one is 2..n+1 (member 1 leaves,
    member n+1 joins).  Reshare players run on dedicated sim peers that
    share their host's bandwidth cursors with the co-located signer, so
    resharing contends with signing for the same uplinks.  When every
    reshare player finalizes, one atomic epoch-switch event installs
    the new shares and verification keys; in-flight epoch-0 partials
    still combine under the retained epoch-0 keys, and retransmits land
    in the epoch-1 bucket.  Both epochs must produce signatures.

    The row also reports the shard-ring remap fraction when the
    :class:`~repro.service.shards.HashRing` grows from ``shards_before``
    to ``shards_after`` — the data-plane cost that accompanies a
    committee change in the sharded service.
    """
    group = get_group(group_name)
    codec = WireCodec(group)
    params = ThresholdParams.generate(group, t, n)
    scheme = LJYThresholdScheme(params)
    public_key, shares, vks = scheme.dealer_keygen(
        rng=_rng(seed, "churn-keys"))

    kernel, net, signer_ids = _signing_net(seed, n, profile, loss)
    new_indices = list(range(2, n + 2))
    all_indices = sorted(set(signer_ids) | set(new_indices))
    reshare_peer_of = {i: ("reshare", i) for i in all_indices}
    # A node's reshare role shares its signing host's uplink/downlink.
    for i in all_indices:
        net.links.host_of[("reshare", i)] = i

    signers = {
        i: SignerPeer(i, net, scheme, shares[i], codec,
                      compute_delay_us=SIGN_COMPUTE_US)
        for i in signer_ids
    }
    combiner = CombinerPeer(
        "combiner", net, scheme, public_key, vks, signer_ids, codec,
        rng=_rng(seed, "churn-combine"), window_size=4,
        retry_timeout_us=1_000_000, max_retries=8)
    _schedule_arrivals(kernel, combiner, seed, "churn", requests,
                       mean_interval_us)

    state = {"finalized": 0, "switch_us": None, "publics": None,
             "mismatches": 0}
    reshare_peers: Dict[int, RoundDrivenPeer] = {}

    def on_reshare_finalize(peer: RoundDrivenPeer) -> None:
        result = peer.result
        state["finalized"] += 1
        if state["publics"] is None:
            state["publics"] = list(result.public_components)
        elif list(result.public_components) != state["publics"]:
            state["mismatches"] += 1
        if state["finalized"] == len(reshare_peers):
            _epoch_switch()

    def _epoch_switch() -> None:
        if state["mismatches"]:
            raise SimulationError(
                "reshare players disagreed on the public components")
        reference = reshare_peers[new_indices[0]].result
        new_vks = {
            j: VerificationKey(index=j, v_1=components[0],
                               v_2=components[1])
            for j, components in reference.verification_keys.items()
        }
        for i in new_indices:
            pairs = reshare_peers[i].result.share_pairs
            new_share = PrivateKeyShare(
                index=i, a_1=pairs[0][0], b_1=pairs[0][1],
                a_2=pairs[1][0], b_2=pairs[1][1])
            if i in signers:
                signers[i].install_share(new_share, epoch=1)
            else:
                joined = SignerPeer(i, net, scheme, new_share, codec,
                                    compute_delay_us=SIGN_COMPUTE_US)
                joined.epoch = 1
                signers[i] = joined
        combiner.install_epoch(1, new_vks)
        combiner.signer_ids = list(new_indices)
        state["switch_us"] = kernel.now_us
        kernel.trace("epoch-switch")

    reshare_ids = [reshare_peer_of[i] for i in all_indices]
    schedule = _round_window_us(net.links, n + 1, t, reshare_start_us)
    for i in all_indices:
        player = ResharePlayer(
            i, group, params.g_z, params.g_r, old_t=t, new_t=t,
            dealer_indices=signer_ids, new_indices=new_indices,
            old_vks=vks, old_share=shares.get(i),
            rng=_rng(seed, "reshare-player", i))
        reshare_peers[i] = RoundDrivenPeer(
            reshare_peer_of[i], net, player, schedule,
            on_finalize=on_reshare_finalize,
            peer_for_player=reshare_peer_of.__getitem__,
            group_ids=reshare_ids)
    for i in all_indices:
        kernel.schedule_at(reshare_start_us, reshare_peers[i].start)
    kernel.run()

    if state["switch_us"] is None:
        raise SimulationError("the reshare never completed")
    row = _signing_row("churn", combiner, net, kernel, requests)

    # Data-plane churn: how many request keys move shards when the ring
    # grows (purely a function of the message bytes — deterministic).
    before = HashRing(list(range(shards_before)))
    after = HashRing(list(range(shards_after)))
    moved = sum(
        1 for request in combiner.requests.values()
        if before.shard_for(request.message)
        != after.shard_for(request.message))
    row.update({
        "seed": seed, "n": n, "t": t, "profile": profile, "loss": loss,
        "reshare_ms": (state["switch_us"] - reshare_start_us) / 1000.0,
        "epoch0_signed": combiner.signed_by_epoch.get(0, 0),
        "epoch1_signed": combiner.signed_by_epoch.get(1, 0),
        "remap_pct": 100.0 * moved / max(1, len(combiner.requests)),
    })
    if row["epoch1_signed"] == 0:
        raise SimulationError("no request ever signed under epoch 1")
    return row


# ---------------------------------------------------------------------------
# The CI gate
# ---------------------------------------------------------------------------

def run_ci_scenario(seed: int = 2026) -> Dict:
    """The fixed-seed composite CI runs twice and diffs byte-for-byte:
    a lossy n=64 DKG (complaint machinery exercised) plus a small
    robust-combine run.  The digest covers both kernels' full traces."""
    dkg = run_dkg_scenario(seed, n=64, t=5, profile="wan", loss=0.03)
    robust = run_robust_scenario(
        seed, n=10, t=2, requests=12, loss=0.10, stragglers=1, forgers=1,
        mean_interval_us=30_000)
    digest = hashlib.sha256(
        (dkg["digest"] + robust["digest"]).encode("ascii")).hexdigest()
    return {"scenario": "ci", "seed": seed, "dkg": dkg, "robust": robust,
            "digest": digest}


#: CLI / test registry — scenario name -> callable(seed, **overrides).
SCENARIOS = {
    "ci": run_ci_scenario,
    "dkg": run_dkg_scenario,
    "quorum": run_quorum_scenario,
    "robust": run_robust_scenario,
    "churn": run_churn_scenario,
}
