"""The simulated network: peers, messages, delivery.

:class:`SimNet` glues the event kernel to the link model.  ``send``
takes the **sending peer object**, not a claimed sender id, so a peer
cannot forge another's identity — the authenticated-channels assumption
of the paper's Section 2.1, enforced the same way
:class:`repro.net.simulator.SyncNetwork` enforces it for the lockstep
tier.  Broadcast is n-1 unicasts through the sender's uplink (there is
no broadcast medium on a WAN).

Byte accounting reuses the repo's existing meters: payloads that are
``bytes`` (the :class:`repro.serialization.WireCodec` frames the signing
peers exchange) count their exact length; structured protocol payloads
(DKG dealings) go through :func:`repro.net.metrics.estimate_size`, the
same estimator the lockstep simulator and the service telemetry use, so
simulated tables and loopback tables report comparable bytes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.metrics import TrafficCounter, estimate_size
from repro.sims.kernel import EventKernel, SimulationError
from repro.sims.links import LinkModel


class SimMessage:
    """One in-flight message (sender/recipient are peer ids)."""

    __slots__ = ("sender", "recipient", "kind", "payload", "size_bytes")

    def __init__(self, sender, recipient, kind: str, payload,
                 size_bytes: int):
        self.sender = sender
        self.recipient = recipient
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes


class SimPeer:
    """Base class for simulated nodes; subclasses implement
    :meth:`receive`."""

    def __init__(self, peer_id, net: "SimNet"):
        self.peer_id = peer_id
        self.net = net
        net.add_peer(self)

    def receive(self, message: SimMessage) -> None:
        raise NotImplementedError

    # Convenience wrappers that stamp this peer as the sender.
    def send(self, recipient, kind: str, payload,
             size_bytes: Optional[int] = None) -> None:
        self.net.send(self, recipient, kind, payload, size_bytes)

    def broadcast(self, kind: str, payload,
                  size_bytes: Optional[int] = None) -> None:
        self.net.broadcast(self, kind, payload, size_bytes)


class SimNet:
    """Delivers messages between peers via the kernel + link model."""

    def __init__(self, kernel: EventKernel, links: LinkModel):
        self.kernel = kernel
        self.links = links
        self.peers: Dict[object, SimPeer] = {}
        self.traffic = TrafficCounter()
        self.drops = 0

    def add_peer(self, peer: SimPeer) -> None:
        if peer.peer_id in self.peers:
            raise SimulationError(f"duplicate peer id {peer.peer_id!r}")
        self.peers[peer.peer_id] = peer

    # -- sending ------------------------------------------------------------
    def _size_of(self, payload) -> int:
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        return estimate_size(payload)

    def send(self, sender: SimPeer, recipient, kind: str, payload,
             size_bytes: Optional[int] = None,
             reliable: bool = False) -> None:
        """Ship one message; the sender is the peer object itself, so
        sender identity cannot be forged.  ``reliable`` messages cannot
        be lost (the paper's broadcast-channel assumption) but still
        pay bandwidth and latency."""
        if self.peers.get(sender.peer_id) is not sender:
            raise SimulationError(
                f"unregistered sender {sender.peer_id!r}")
        if recipient not in self.peers:
            raise SimulationError(f"no peer {recipient!r}")
        size = self._size_of(payload) if size_bytes is None else size_bytes
        self.traffic.messages += 1
        self.traffic.bytes_total += size
        deliver_at = self.links.transfer(
            self.kernel.now_us, sender.peer_id, recipient, size,
            lossless=reliable)
        if deliver_at is None:
            self.drops += 1
            self.kernel.trace(
                f"drop {sender.peer_id}->{recipient} {kind} {size}B")
            return
        message = SimMessage(sender.peer_id, recipient, kind, payload, size)
        self.kernel.schedule_at(deliver_at, self._deliver, message)

    def broadcast(self, sender: SimPeer, kind: str, payload,
                  size_bytes: Optional[int] = None,
                  reliable: bool = False) -> None:
        """n-1 unicasts; the payload size is computed once and every
        copy pays its own uplink serialization slot."""
        size = self._size_of(payload) if size_bytes is None else size_bytes
        for peer_id in self.peers:
            if peer_id != sender.peer_id:
                self.send(sender, peer_id, kind, payload, size_bytes=size,
                          reliable=reliable)

    def _deliver(self, message: SimMessage) -> None:
        self.kernel.trace(
            f"recv {message.recipient}<-{message.sender} "
            f"{message.kind} {message.size_bytes}B")
        self.peers[message.recipient].receive(message)
