"""Discrete-event WAN simulation harness (see ``docs/SIMULATION.md``).

Dependency-free simulation of the paper's protocols at large n: a
seed-deterministic event kernel (:mod:`repro.sims.kernel`), per-link
latency/bandwidth/loss models (:mod:`repro.sims.links`), a message
fabric with authenticated senders (:mod:`repro.sims.net`), peers that
run the *real* DKG / reshare / signing code over real wire frames
(:mod:`repro.sims.peers`), and the scenario catalog
(:mod:`repro.sims.scenarios`).
"""

from repro.sims.kernel import EventKernel, SimulationError
from repro.sims.links import (
    LAN_PROFILE, WAN_PROFILE, LinkModel, LinkProfile, assign_regions,
    make_link_model,
)
from repro.sims.net import SimMessage, SimNet, SimPeer
from repro.sims.peers import (
    CombinerPeer, RoundDrivenPeer, RoundSchedule, SignerPeer,
)
from repro.sims.scenarios import (
    SCENARIOS, run_churn_scenario, run_ci_scenario, run_dkg_scenario,
    run_quorum_scenario, run_robust_scenario,
)

__all__ = [
    "EventKernel", "SimulationError",
    "LAN_PROFILE", "WAN_PROFILE", "LinkModel", "LinkProfile",
    "assign_regions", "make_link_model",
    "SimMessage", "SimNet", "SimPeer",
    "CombinerPeer", "RoundDrivenPeer", "RoundSchedule", "SignerPeer",
    "SCENARIOS", "run_churn_scenario", "run_ci_scenario",
    "run_dkg_scenario", "run_quorum_scenario", "run_robust_scenario",
]
