"""Canonical sizes and encodings for the T1/T5 comparison experiments.

The paper's size claims (Section 3.1 and Section 4) are stated for
Barreto-Naehrig curves at the 128-bit level: G elements take 256 bits,
G_hat elements 512 bits.  The functions here measure the *actual* encoded
sizes of this library's objects so the experiment tables report measured
numbers rather than constants copied from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SizeReport:
    """Measured sizes of one scheme's artifacts, in bits."""

    scheme: str
    signature_bits: int
    public_key_bits: int
    share_bits: int
    partial_signature_bits: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "signature_bits": self.signature_bits,
            "public_key_bits": self.public_key_bits,
            "share_bits": self.share_bits,
            "partial_bits": self.partial_signature_bits,
        }


def bits(obj) -> int:
    """Encoded size in bits of anything exposing ``to_bytes``."""
    return len(obj.to_bytes()) * 8


def scalar_bits(order: int) -> int:
    """Canonical encoded size of one Z_p scalar (rounded up to bytes)."""
    return ((order.bit_length() + 7) // 8) * 8


def measure_ljy_rom(scheme, public_key, share, partial, signature
                    ) -> SizeReport:
    """Sizes for the Section 3 scheme (share = 4 scalars)."""
    order = scheme.group.order
    return SizeReport(
        scheme="LJY14 Section 3 (ROM)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=4 * scalar_bits(order),
        partial_signature_bits=bits(partial),
    )


def measure_ljy_standard(scheme, public_key, share, partial, signature
                         ) -> SizeReport:
    """Sizes for the Section 4 scheme (share = 2 scalars)."""
    order = scheme.group.order
    return SizeReport(
        scheme="LJY14 Section 4 (standard model)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=2 * scalar_bits(order),
        partial_signature_bits=bits(partial),
    )


def measure_dlin(scheme, public_key, share, partial, signature) -> SizeReport:
    """Sizes for the Appendix F scheme (share = 9 scalars)."""
    order = scheme.group.order
    partial_total = sum(
        len(getattr(partial, name).to_bytes()) * 8
        for name in ("z", "r", "u"))
    return SizeReport(
        scheme="LJY14 Appendix F (DLIN)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=9 * scalar_bits(order),
        partial_signature_bits=partial_total,
    )


def measure_bls(group, public_key, partial, signature) -> SizeReport:
    return SizeReport(
        scheme="Boldyreva'03 threshold BLS (static)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=scalar_bits(group.order),
        partial_signature_bits=bits(partial),
    )


def measure_shoup(scheme, public_key, partial, signature) -> SizeReport:
    modulus_bits = public_key.modulus_bits
    return SizeReport(
        scheme=f"Shoup'00 threshold RSA ({modulus_bits}-bit N)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=((modulus_bits + 7) // 8) * 8,
        partial_signature_bits=bits(partial),
    )
