"""Canonical sizes, encodings and the service wire format.

Two layers live here:

* **Size accounting** (the original contents): the paper's size claims
  (Section 3.1 and Section 4) are stated for Barreto-Naehrig curves at
  the 128-bit level: G elements take 256 bits, G_hat elements 512 bits.
  The ``measure_*`` functions report the *actual* encoded sizes of this
  library's objects so the experiment tables report measured numbers
  rather than constants copied from the paper.

* **The wire format** (:class:`WireCodec` and the job dataclasses): a
  round-trippable byte encoding for partial signatures, signatures,
  verification keys, key shares and the window-sized jobs the
  process-parallel worker tier (:mod:`repro.service.workers`) ships
  across process boundaries.  Group elements already know their
  canonical encodings (``to_bytes`` / ``g1_from_bytes`` /
  ``g2_from_bytes``); the codec frames them with fixed-width element
  fields, 4-byte big-endian integers and length-prefixed byte strings,
  so ``decode(encode(x))`` reproduces ``x`` and
  ``encode(decode(blob)) == blob`` on both backends.

* **The TCP frame layer** (``encode_frame`` / ``decode_frame_header``
  and the HELLO handshake payload): a length-prefixed, versioned
  framing for shipping the wire-format blobs over a byte stream — what
  the multi-machine transport (:mod:`repro.service.transport`) puts on
  real sockets.  Byte-level spec: ``docs/WIRE_FORMAT.md``.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.keys import PartialSignature, PrivateKeyShare, Signature, \
    VerificationKey
from repro.errors import SerializationError
from repro.groups.api import BilinearGroup


@dataclass(frozen=True)
class SizeReport:
    """Measured sizes of one scheme's artifacts, in bits."""

    scheme: str
    signature_bits: int
    public_key_bits: int
    share_bits: int
    partial_signature_bits: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "signature_bits": self.signature_bits,
            "public_key_bits": self.public_key_bits,
            "share_bits": self.share_bits,
            "partial_bits": self.partial_signature_bits,
        }


def bits(obj) -> int:
    """Encoded size in bits of anything exposing ``to_bytes``."""
    return len(obj.to_bytes()) * 8


def scalar_bits(order: int) -> int:
    """Canonical encoded size of one Z_p scalar (rounded up to bytes)."""
    return ((order.bit_length() + 7) // 8) * 8


def measure_ljy_rom(scheme, public_key, share, partial, signature
                    ) -> SizeReport:
    """Sizes for the Section 3 scheme (share = 4 scalars)."""
    order = scheme.group.order
    return SizeReport(
        scheme="LJY14 Section 3 (ROM)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=4 * scalar_bits(order),
        partial_signature_bits=bits(partial),
    )


def measure_ljy_standard(scheme, public_key, share, partial, signature
                         ) -> SizeReport:
    """Sizes for the Section 4 scheme (share = 2 scalars)."""
    order = scheme.group.order
    return SizeReport(
        scheme="LJY14 Section 4 (standard model)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=2 * scalar_bits(order),
        partial_signature_bits=bits(partial),
    )


def measure_dlin(scheme, public_key, share, partial, signature) -> SizeReport:
    """Sizes for the Appendix F scheme (share = 9 scalars)."""
    order = scheme.group.order
    partial_total = sum(
        len(getattr(partial, name).to_bytes()) * 8
        for name in ("z", "r", "u"))
    return SizeReport(
        scheme="LJY14 Appendix F (DLIN)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=9 * scalar_bits(order),
        partial_signature_bits=partial_total,
    )


def measure_bls(group, public_key, partial, signature) -> SizeReport:
    return SizeReport(
        scheme="Boldyreva'03 threshold BLS (static)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=scalar_bits(group.order),
        partial_signature_bits=bits(partial),
    )


def measure_shoup(scheme, public_key, partial, signature) -> SizeReport:
    modulus_bits = public_key.modulus_bits
    return SizeReport(
        scheme=f"Shoup'00 threshold RSA ({modulus_bits}-bit N)",
        signature_bits=bits(signature),
        public_key_bits=bits(public_key),
        share_bits=((modulus_bits + 7) // 8) * 8,
        partial_signature_bits=bits(partial),
    )


# ---------------------------------------------------------------------------
# The wire format
# ---------------------------------------------------------------------------

#: Job/outcome kind tags (one byte each).  Uppercase = job, lowercase =
#: the matching outcome, ``C`` = a full service context, ``W``/``w`` =
#: the write-ahead log's admit/done records (uppercase opens an
#: obligation, lowercase settles it — same convention as job/outcome).
KIND_SIGN_JOB = b"S"
KIND_VERIFY_JOB = b"V"
KIND_PARTIAL_JOB = b"P"
KIND_SIGN_REQUEST_JOB = b"Q"
KIND_VERIFY_REQUEST_JOB = b"R"
KIND_SIGN_OUTCOME = b"s"
KIND_VERIFY_OUTCOME = b"v"
KIND_PARTIAL_OUTCOME = b"p"
KIND_SIGN_REQUEST_OUTCOME = b"q"
KIND_VERIFY_REQUEST_OUTCOME = b"r"
KIND_CONTEXT = b"C"
KIND_WAL_ADMIT = b"W"
KIND_WAL_DONE = b"w"


@dataclass(frozen=True)
class SignWindowJob:
    """One batch window of sign requests: produce a full signature per
    message using the given signer quorum (partial signing, the
    cross-message window check and the robust fallback all happen on the
    executing side — the job carries only what a dispatcher knows).

    ``epoch`` stamps the key-lifecycle generation the dispatcher formed
    the window under; an executor holding a different epoch's shares
    must refuse the job rather than sign with dead key material.
    """

    shard_id: int
    messages: Tuple[bytes, ...]
    quorum: Tuple[int, ...]
    epoch: int = 0


@dataclass(frozen=True)
class VerifyWindowJob:
    """One batch window of verify requests."""

    shard_id: int
    messages: Tuple[bytes, ...]
    signatures: Tuple[Signature, ...]
    epoch: int = 0


@dataclass(frozen=True)
class PartialSignJob:
    """Produce the partial signatures of ``signers`` on one message —
    the building block for a combiner that is *not* co-located with the
    signers (a distributed deployment over real sockets)."""

    shard_id: int
    message: bytes
    signers: Tuple[int, ...]
    epoch: int = 0


@dataclass(frozen=True)
class SignRequestJob:
    """ONE sign request, shipped individually so the *worker* — not the
    dispatcher — accumulates the batch window.

    With pre-built windows (:class:`SignWindowJob`) the parent pays the
    batching latency: every shard must close its own window before
    anything crosses the wire, and at high shard counts each shard's
    share of the traffic is too thin to fill windows quickly.  Shipping
    single requests down a pipelined connection lets the remote worker
    re-batch across *all* connected shards (see
    ``WorkerServer`` in :mod:`repro.service.transport`), so window
    occupancy follows total traffic instead of per-shard traffic.
    """

    shard_id: int
    message: bytes
    quorum: Tuple[int, ...]
    epoch: int = 0


@dataclass(frozen=True)
class VerifyRequestJob:
    """ONE verify request (the verify-side twin of
    :class:`SignRequestJob`)."""

    shard_id: int
    message: bytes
    signature: Signature
    epoch: int = 0


@dataclass(frozen=True)
class SignWindowOutcome:
    """Result of a :class:`SignWindowJob`.

    ``signatures[i]`` is ``None`` exactly when position ``i`` appears in
    ``failures``; ``flagged`` lists the positions that needed a robust
    fallback (they still completed), and ``fallback_combines`` counts
    the full-signer-ring recombines that ran.
    """

    signatures: Tuple[Optional[Signature], ...]
    flagged: Tuple[int, ...]
    failures: Tuple[Tuple[int, str], ...]
    fallback_combines: int

    @property
    def faults_localized(self) -> int:
        return len(self.flagged)


@dataclass(frozen=True)
class VerifyWindowOutcome:
    """Result of a :class:`VerifyWindowJob`: one verdict per message."""

    verdicts: Tuple[bool, ...]


@dataclass(frozen=True)
class PartialSignOutcome:
    """Result of a :class:`PartialSignJob`."""

    partials: Tuple[PartialSignature, ...]


@dataclass(frozen=True)
class SignRequestOutcome:
    """Result of a :class:`SignRequestJob`.

    ``signature`` is ``None`` exactly when ``failure`` is non-empty;
    ``flagged`` marks a request that needed the robust fallback inside
    the window the worker accumulated it into.
    """

    signature: Optional[Signature]
    flagged: bool = False
    failure: str = ""


@dataclass(frozen=True)
class VerifyRequestOutcome:
    """Result of a :class:`VerifyRequestJob`."""

    verdict: bool


@dataclass(frozen=True)
class WalAdmitRecord:
    """One admitted sign request: a durable obligation.

    Appended by the service frontend the moment a request clears
    backpressure; until a :class:`WalDoneRecord` with the same
    ``request_id`` lands, a restart must replay the message through the
    normal signing path (partial signing is deterministic, so a replay
    of an already-signed-but-unacknowledged request reproduces the
    identical signature — idempotence by construction).

    ``epoch`` records the key-lifecycle generation the request was
    admitted under.  Signatures are unique per message, so replaying an
    old-epoch admit under newer shares settles identically; the epoch
    exists so a restart can *refuse* to run with key material older
    than what the log has seen (a crash mid-transition must not resume
    on the pre-transition shares).
    """

    request_id: int
    message: bytes
    epoch: int = 0


@dataclass(frozen=True)
class WalDoneRecord:
    """Settles one :class:`WalAdmitRecord`.

    ``signature`` is set iff the request completed; a shed or failed
    request settles with ``signature=None`` and a human-readable
    ``reason`` (also a settlement — the obligation was *answered*, with
    a typed rejection, and must not be replayed).
    """

    request_id: int
    signature: Optional[Signature] = None
    reason: str = ""


class _Reader:
    """Sequential reader over one wire blob (bounds-checked)."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, length: int) -> bytes:
        end = self.offset + length
        if end > len(self.data):
            raise SerializationError(
                f"truncated wire blob: wanted {length} bytes at offset "
                f"{self.offset}, have {len(self.data) - self.offset}")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.take(8), "big")

    def packed(self) -> bytes:
        return self.take(self.u32())

    def done(self) -> None:
        if self.offset != len(self.data):
            raise SerializationError(
                f"{len(self.data) - self.offset} trailing bytes after "
                "wire blob")


def _u32(value: int) -> bytes:
    if value < 0 or value >= 1 << 32:
        raise SerializationError(f"field {value} does not fit in u32")
    return value.to_bytes(4, "big")


def _u64(value: int) -> bytes:
    if value < 0 or value >= 1 << 64:
        raise SerializationError(f"field {value} does not fit in u64")
    return value.to_bytes(8, "big")


def _packed(data: bytes) -> bytes:
    return _u32(len(data)) + data


def _utf8(data: bytes) -> str:
    """Decode a wire string; malformed UTF-8 is a typed rejection like
    any other malformed field (the fuzz sweeps in
    ``tests/test_fuzz_wire.py`` pin this — a flipped bit in a reason
    string must never escape as :class:`UnicodeDecodeError`)."""
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SerializationError(
            f"invalid UTF-8 in wire string: {exc}") from exc


class WireCodec:
    """Round-trippable codecs for one bilinear-group backend.

    Element fields are fixed-width (``group.g1_bytes`` /
    ``group.g2_bytes`` — both backends define canonical fixed-size
    encodings), scalars take the group order's byte length, everything
    else is framed with 4-byte big-endian integers.
    """

    def __init__(self, group: BilinearGroup):
        self.group = group
        self.scalar_bytes = scalar_bits(group.order) // 8

    # -- scalars ------------------------------------------------------------
    def encode_scalar(self, value: int) -> bytes:
        return (value % self.group.order).to_bytes(self.scalar_bytes, "big")

    def decode_scalar(self, reader: _Reader) -> int:
        return int.from_bytes(reader.take(self.scalar_bytes), "big")

    # -- protocol objects ---------------------------------------------------
    def encode_partial(self, partial: PartialSignature) -> bytes:
        return _u32(partial.index) + partial.z.to_bytes() + \
            partial.r.to_bytes()

    def _read_partial(self, reader: _Reader) -> PartialSignature:
        index = reader.u32()
        z = self.group.g1_from_bytes(reader.take(self.group.g1_bytes))
        r = self.group.g1_from_bytes(reader.take(self.group.g1_bytes))
        return PartialSignature(index=index, z=z, r=r)

    def decode_partial(self, blob: bytes) -> PartialSignature:
        reader = _Reader(blob)
        partial = self._read_partial(reader)
        reader.done()
        return partial

    def encode_signature(self, signature: Signature) -> bytes:
        return signature.z.to_bytes() + signature.r.to_bytes()

    def _read_signature(self, reader: _Reader) -> Signature:
        z = self.group.g1_from_bytes(reader.take(self.group.g1_bytes))
        r = self.group.g1_from_bytes(reader.take(self.group.g1_bytes))
        return Signature(z=z, r=r)

    def decode_signature(self, blob: bytes) -> Signature:
        reader = _Reader(blob)
        signature = self._read_signature(reader)
        reader.done()
        return signature

    def encode_verification_key(self, vk: VerificationKey) -> bytes:
        return _u32(vk.index) + vk.v_1.to_bytes() + vk.v_2.to_bytes()

    def _read_verification_key(self, reader: _Reader) -> VerificationKey:
        index = reader.u32()
        v_1 = self.group.g2_from_bytes(reader.take(self.group.g2_bytes))
        v_2 = self.group.g2_from_bytes(reader.take(self.group.g2_bytes))
        return VerificationKey(index=index, v_1=v_1, v_2=v_2)

    def decode_verification_key(self, blob: bytes) -> VerificationKey:
        reader = _Reader(blob)
        vk = self._read_verification_key(reader)
        reader.done()
        return vk

    def encode_share(self, share: PrivateKeyShare) -> bytes:
        return _u32(share.index) + b"".join(
            self.encode_scalar(value)
            for value in (share.a_1, share.b_1, share.a_2, share.b_2))

    def _read_share(self, reader: _Reader) -> PrivateKeyShare:
        index = reader.u32()
        a_1, b_1, a_2, b_2 = (self.decode_scalar(reader) for _ in range(4))
        return PrivateKeyShare(index=index, a_1=a_1, b_1=b_1,
                               a_2=a_2, b_2=b_2)

    def decode_share(self, blob: bytes) -> PrivateKeyShare:
        reader = _Reader(blob)
        share = self._read_share(reader)
        reader.done()
        return share

    # -- window jobs ----------------------------------------------------------
    def encode_job(self, job) -> bytes:
        if isinstance(job, SignWindowJob):
            return KIND_SIGN_JOB + _u32(job.shard_id) + _u32(job.epoch) + \
                _u32(len(job.messages)) + \
                b"".join(_packed(message) for message in job.messages) + \
                _u32(len(job.quorum)) + \
                b"".join(_u32(index) for index in job.quorum)
        if isinstance(job, VerifyWindowJob):
            if len(job.messages) != len(job.signatures):
                raise SerializationError(
                    "verify job needs one signature per message")
            return KIND_VERIFY_JOB + _u32(job.shard_id) + _u32(job.epoch) + \
                _u32(len(job.messages)) + \
                b"".join(
                    _packed(message) + self.encode_signature(signature)
                    for message, signature
                    in zip(job.messages, job.signatures))
        if isinstance(job, PartialSignJob):
            return KIND_PARTIAL_JOB + _u32(job.shard_id) + \
                _u32(job.epoch) + \
                _packed(job.message) + _u32(len(job.signers)) + \
                b"".join(_u32(index) for index in job.signers)
        if isinstance(job, SignRequestJob):
            return KIND_SIGN_REQUEST_JOB + _u32(job.shard_id) + \
                _u32(job.epoch) + _packed(job.message) + \
                _u32(len(job.quorum)) + \
                b"".join(_u32(index) for index in job.quorum)
        if isinstance(job, VerifyRequestJob):
            return KIND_VERIFY_REQUEST_JOB + _u32(job.shard_id) + \
                _u32(job.epoch) + _packed(job.message) + \
                self.encode_signature(job.signature)
        raise SerializationError(f"unknown job type {type(job).__name__}")

    def decode_job(self, blob: bytes):
        reader = _Reader(blob)
        kind = reader.take(1)
        shard_id = reader.u32()
        epoch = reader.u32()
        if kind == KIND_SIGN_JOB:
            messages = tuple(reader.packed() for _ in range(reader.u32()))
            quorum = tuple(reader.u32() for _ in range(reader.u32()))
            job = SignWindowJob(shard_id=shard_id, messages=messages,
                                quorum=quorum, epoch=epoch)
        elif kind == KIND_VERIFY_JOB:
            count = reader.u32()
            messages, signatures = [], []
            for _ in range(count):
                messages.append(reader.packed())
                signatures.append(self._read_signature(reader))
            job = VerifyWindowJob(shard_id=shard_id,
                                  messages=tuple(messages),
                                  signatures=tuple(signatures),
                                  epoch=epoch)
        elif kind == KIND_PARTIAL_JOB:
            message = reader.packed()
            signers = tuple(reader.u32() for _ in range(reader.u32()))
            job = PartialSignJob(shard_id=shard_id, message=message,
                                 signers=signers, epoch=epoch)
        elif kind == KIND_SIGN_REQUEST_JOB:
            message = reader.packed()
            quorum = tuple(reader.u32() for _ in range(reader.u32()))
            job = SignRequestJob(shard_id=shard_id, message=message,
                                 quorum=quorum, epoch=epoch)
        elif kind == KIND_VERIFY_REQUEST_JOB:
            message = reader.packed()
            signature = self._read_signature(reader)
            job = VerifyRequestJob(shard_id=shard_id, message=message,
                                   signature=signature, epoch=epoch)
        else:
            raise SerializationError(f"unknown job kind {kind!r}")
        reader.done()
        return job

    # -- job outcomes ---------------------------------------------------------
    def encode_outcome(self, outcome) -> bytes:
        if isinstance(outcome, SignWindowOutcome):
            failures = dict(outcome.failures)
            body = [_u32(len(outcome.signatures))]
            for position, signature in enumerate(outcome.signatures):
                if signature is None:
                    if position not in failures:
                        raise SerializationError(
                            f"missing signature at position {position} "
                            "without a failure record")
                    body.append(b"\x00" + _packed(
                        failures[position].encode("utf-8")))
                else:
                    body.append(b"\x01" + self.encode_signature(signature))
            body.append(_u32(len(outcome.flagged)))
            body.extend(_u32(position) for position in outcome.flagged)
            body.append(_u32(outcome.fallback_combines))
            return KIND_SIGN_OUTCOME + b"".join(body)
        if isinstance(outcome, VerifyWindowOutcome):
            return KIND_VERIFY_OUTCOME + _u32(len(outcome.verdicts)) + \
                bytes(1 if verdict else 0 for verdict in outcome.verdicts)
        if isinstance(outcome, PartialSignOutcome):
            return KIND_PARTIAL_OUTCOME + _u32(len(outcome.partials)) + \
                b"".join(self.encode_partial(partial)
                         for partial in outcome.partials)
        if isinstance(outcome, SignRequestOutcome):
            flagged = b"\x01" if outcome.flagged else b"\x00"
            if outcome.signature is None:
                if not outcome.failure:
                    raise SerializationError(
                        "sign-request outcome without a signature needs "
                        "a failure reason")
                return KIND_SIGN_REQUEST_OUTCOME + b"\x00" + flagged + \
                    _packed(outcome.failure.encode("utf-8"))
            return KIND_SIGN_REQUEST_OUTCOME + b"\x01" + flagged + \
                self.encode_signature(outcome.signature)
        if isinstance(outcome, VerifyRequestOutcome):
            return KIND_VERIFY_REQUEST_OUTCOME + (
                b"\x01" if outcome.verdict else b"\x00")
        raise SerializationError(
            f"unknown outcome type {type(outcome).__name__}")

    def decode_outcome(self, blob: bytes):
        reader = _Reader(blob)
        kind = reader.take(1)
        if kind == KIND_SIGN_OUTCOME:
            count = reader.u32()
            signatures: List[Optional[Signature]] = []
            failures = []
            for position in range(count):
                status = reader.take(1)
                if status == b"\x00":
                    signatures.append(None)
                    failures.append(
                        (position, _utf8(reader.packed())))
                elif status == b"\x01":
                    signatures.append(self._read_signature(reader))
                else:
                    # Strict one-byte flags keep the encoding canonical
                    # (encode(decode(blob)) == blob), like the rejection
                    # of unknown kinds and trailing bytes.
                    raise SerializationError(
                        f"invalid sign-outcome status byte {status!r}")
            flagged = tuple(reader.u32() for _ in range(reader.u32()))
            fallback_combines = reader.u32()
            outcome = SignWindowOutcome(
                signatures=tuple(signatures), flagged=flagged,
                failures=tuple(failures),
                fallback_combines=fallback_combines)
        elif kind == KIND_VERIFY_OUTCOME:
            flags = reader.take(reader.u32())
            if any(byte > 1 for byte in flags):
                raise SerializationError(
                    "invalid verdict byte in verify outcome")
            outcome = VerifyWindowOutcome(verdicts=tuple(
                byte == 1 for byte in flags))
        elif kind == KIND_PARTIAL_OUTCOME:
            outcome = PartialSignOutcome(partials=tuple(
                self._read_partial(reader) for _ in range(reader.u32())))
        elif kind == KIND_SIGN_REQUEST_OUTCOME:
            status = reader.take(1)
            flag_byte = reader.take(1)
            if flag_byte not in (b"\x00", b"\x01"):
                raise SerializationError(
                    f"invalid sign-request flagged byte {flag_byte!r}")
            flagged = flag_byte == b"\x01"
            if status == b"\x01":
                outcome = SignRequestOutcome(
                    signature=self._read_signature(reader),
                    flagged=flagged)
            elif status == b"\x00":
                outcome = SignRequestOutcome(
                    signature=None, flagged=flagged,
                    failure=_utf8(reader.packed()))
            else:
                raise SerializationError(
                    f"invalid sign-request status byte {status!r}")
        elif kind == KIND_VERIFY_REQUEST_OUTCOME:
            verdict_byte = reader.take(1)
            if verdict_byte not in (b"\x00", b"\x01"):
                raise SerializationError(
                    f"invalid verify-request verdict byte {verdict_byte!r}")
            outcome = VerifyRequestOutcome(verdict=verdict_byte == b"\x01")
        else:
            raise SerializationError(f"unknown outcome kind {kind!r}")
        reader.done()
        return outcome

    # -- write-ahead-log records ----------------------------------------------
    def encode_wal_record(self, record) -> bytes:
        """One WAL record payload (the on-disk log adds its own
        length+CRC storage framing on top — see
        :mod:`repro.service.wal` and ``docs/WIRE_FORMAT.md``)."""
        if isinstance(record, WalAdmitRecord):
            return KIND_WAL_ADMIT + _u64(record.request_id) + \
                _u32(record.epoch) + _packed(record.message)
        if isinstance(record, WalDoneRecord):
            if record.signature is not None:
                return KIND_WAL_DONE + _u64(record.request_id) + b"\x01" + \
                    self.encode_signature(record.signature)
            return KIND_WAL_DONE + _u64(record.request_id) + b"\x00" + \
                _packed(record.reason.encode("utf-8"))
        raise SerializationError(
            f"unknown WAL record type {type(record).__name__}")

    def decode_wal_record(self, blob: bytes):
        reader = _Reader(blob)
        kind = reader.take(1)
        if kind == KIND_WAL_ADMIT:
            record = WalAdmitRecord(request_id=reader.u64(),
                                    epoch=reader.u32(),
                                    message=reader.packed())
        elif kind == KIND_WAL_DONE:
            request_id = reader.u64()
            status = reader.take(1)
            if status == b"\x01":
                record = WalDoneRecord(request_id=request_id,
                                       signature=self._read_signature(reader))
            elif status == b"\x00":
                record = WalDoneRecord(
                    request_id=request_id, signature=None,
                    reason=_utf8(reader.packed()))
            else:
                # Strict one-byte flags, like the sign-outcome codec:
                # the encoding stays canonical.
                raise SerializationError(
                    f"invalid WAL done-record status byte {status!r}")
        else:
            raise SerializationError(f"unknown WAL record kind {kind!r}")
        reader.done()
        return record

    # -- size accounting ------------------------------------------------------
    def encoded_size(self, value) -> int:
        """Exact wire size in bytes of a codec-encodable value, without
        building the encoding.

        The simulation harness and capacity planning both need per-
        message byte counts for traffic a node *would* send; computing
        them from the format spec (fixed-width elements and scalars,
        4-byte counts, length-prefixed strings) is O(1) in the payload
        size.  ``tests/test_fuzz_wire.py`` pins this to
        ``len(encode_*(value))`` for every wire type on both backends.
        """
        g1, g2 = self.group.g1_bytes, self.group.g2_bytes
        if isinstance(value, PartialSignature):
            return 4 + 2 * g1
        if isinstance(value, Signature):
            return 2 * g1
        if isinstance(value, VerificationKey):
            return 4 + 2 * g2
        if isinstance(value, PrivateKeyShare):
            return 4 + 4 * self.scalar_bytes
        if isinstance(value, SignWindowJob):
            return (13 + sum(4 + len(m) for m in value.messages)
                    + 4 + 4 * len(value.quorum))
        if isinstance(value, VerifyWindowJob):
            return (13 + sum(4 + len(m) + 2 * g1 for m in value.messages))
        if isinstance(value, PartialSignJob):
            return 13 + len(value.message) + 4 + 4 * len(value.signers)
        if isinstance(value, SignRequestJob):
            return (13 + len(value.message) + 4 + 4 * len(value.quorum))
        if isinstance(value, VerifyRequestJob):
            return 13 + len(value.message) + 2 * g1
        if isinstance(value, SignWindowOutcome):
            failures = dict(value.failures)
            per_slot = sum(
                1 + (4 + len(failures[position].encode("utf-8"))
                     if signature is None else 2 * g1)
                for position, signature in enumerate(value.signatures))
            return 5 + per_slot + 4 + 4 * len(value.flagged) + 4
        if isinstance(value, VerifyWindowOutcome):
            return 5 + len(value.verdicts)
        if isinstance(value, PartialSignOutcome):
            return 5 + (4 + 2 * g1) * len(value.partials)
        if isinstance(value, SignRequestOutcome):
            if value.signature is None:
                return 3 + 4 + len(value.failure.encode("utf-8"))
            return 3 + 2 * g1
        if isinstance(value, VerifyRequestOutcome):
            return 2
        if isinstance(value, WalAdmitRecord):
            return 13 + 4 + len(value.message)
        if isinstance(value, WalDoneRecord):
            if value.signature is None:
                return 10 + 4 + len(value.reason.encode("utf-8"))
            return 10 + 2 * g1
        raise SerializationError(
            f"cannot size unknown wire type {type(value).__name__}")

    def framed_size(self, value) -> int:
        """Wire bytes of ``value`` shipped as one TCP frame (header
        included) — what the transport actually puts on the socket."""
        return FRAME_HEADER_BYTES + self.encoded_size(value)


def encode_service_context(handle) -> bytes:
    """Serialize everything a worker process needs to rebuild a
    :class:`~repro.core.scheme.ServiceHandle`: the key-lifecycle epoch,
    backend name, threshold parameters (with the derived generators
    inline, so no derivation assumptions survive the wire), public key,
    key shares and verification keys.

    This is the simulation's stand-in for deployment provisioning; a
    real deployment ships each server only its own share.
    """
    scheme = handle.scheme
    if not hasattr(scheme, "combine_window"):
        raise TypeError(
            f"{type(scheme).__name__} has no window-sized entry points; "
            "the worker tier serves LJYThresholdScheme handles only")
    group = scheme.group
    params = scheme.params
    codec = WireCodec(group)
    body = [
        KIND_CONTEXT,
        _u32(handle.epoch),
        _packed(group.name.encode("utf-8")),
        _u32(params.t), _u32(params.n),
        _packed(params.hash_domain.encode("utf-8")),
        params.g_z.to_bytes(), params.g_r.to_bytes(),
        handle.public_key.g_1.to_bytes(), handle.public_key.g_2.to_bytes(),
        _u32(len(handle.shares)),
    ]
    body.extend(codec.encode_share(share)
                for _, share in sorted(handle.shares.items()))
    body.append(_u32(len(handle.verification_keys)))
    body.extend(codec.encode_verification_key(vk)
                for _, vk in sorted(handle.verification_keys.items()))
    return b"".join(body)


def decode_service_context(blob: bytes):
    """Rebuild a :class:`~repro.core.scheme.ServiceHandle` from
    :func:`encode_service_context` output (used as the per-process
    warm-state seed by :mod:`repro.service.workers`)."""
    from repro.core.keys import PublicKey, ThresholdParams
    from repro.core.scheme import LJYThresholdScheme, ServiceHandle
    from repro.groups import get_group

    reader = _Reader(blob)
    if reader.take(1) != KIND_CONTEXT:
        raise SerializationError("not a service-context blob")
    epoch = reader.u32()
    group = get_group(_utf8(reader.packed()))
    codec = WireCodec(group)
    t, n = reader.u32(), reader.u32()
    hash_domain = _utf8(reader.packed())
    g_z = group.g2_from_bytes(reader.take(group.g2_bytes))
    g_r = group.g2_from_bytes(reader.take(group.g2_bytes))
    g_1 = group.g2_from_bytes(reader.take(group.g2_bytes))
    g_2 = group.g2_from_bytes(reader.take(group.g2_bytes))
    params = ThresholdParams(group=group, t=t, n=n, g_z=g_z, g_r=g_r,
                             hash_domain=hash_domain)
    shares = {}
    for _ in range(reader.u32()):
        share = codec._read_share(reader)
        shares[share.index] = share
    verification_keys = {}
    for _ in range(reader.u32()):
        vk = codec._read_verification_key(reader)
        verification_keys[vk.index] = vk
    reader.done()
    scheme = LJYThresholdScheme(params)
    public_key = PublicKey(params=params, g_1=g_1, g_2=g_2)
    return ServiceHandle(scheme, public_key, shares, verification_keys,
                         epoch=epoch)


# ---------------------------------------------------------------------------
# The TCP frame layer
# ---------------------------------------------------------------------------
#
# A frame is a fixed 18-byte header followed by the payload:
#
#   offset  size  field        notes
#   0       4     magic        b"LJYW"
#   4       1     version      0x03 (FRAME_VERSION)
#   5       1     kind         H (hello) | J (job) | O (outcome) |
#                              E (error) | C (context update)
#   6       8     request id   u64 big-endian; pairs an outcome/error
#                              with the job that caused it, so one
#                              connection can hold many in-flight jobs
#                              (out-of-order completion).  0 for frames
#                              outside any request (HELLO, and the
#                              errors that refuse a broken handshake).
#   14      4     length       payload bytes, u32 BE, <= MAX_FRAME_BYTES
#   18      ...   payload      a WireCodec blob (J/O), a HELLO payload
#                              (H), a service-context blob (C) or a
#                              UTF-8 error message (E)
#
# The header carries everything a receiver needs to reject garbage
# *before* touching the payload: a wrong magic or version means the
# peer speaks a different protocol (close the connection — stream
# framing cannot be trusted past this point), an oversized length means
# a corrupt or hostile peer (never allocate it).  See
# ``docs/WIRE_FORMAT.md`` for the full spec and the compatibility rule.
#
# Version history: v1 had no C frame; v2 added it for live epoch
# transitions (a dispatcher pushing refreshed key material to running
# workers) and stamped jobs with the epoch; v3 (the "pipelined framing"
# protocol) added the request-id field, the per-request job kinds
# (``Q``/``R`` with their lowercase outcomes) and the optional PSK MAC
# in HELLO.  Per the compatibility rule there is no negotiation — both
# ends upgrade together.  The version byte sits at the same offset in
# every version, so an old peer is always refused with a typed
# version-mismatch error, never parsed as garbage.

FRAME_MAGIC = b"LJYW"
FRAME_VERSION = 3
FRAME_HEADER_BYTES = 18
#: Upper bound on one frame's payload.  The largest legitimate payload
#: is a service context (a few KiB at n in the hundreds); 16 MiB leaves
#: three orders of magnitude of headroom while keeping a hostile length
#: field from turning into an allocation attack.
MAX_FRAME_BYTES = 16 * 1024 * 1024

FRAME_KIND_HELLO = b"H"
FRAME_KIND_JOB = b"J"
FRAME_KIND_OUTCOME = b"O"
FRAME_KIND_ERROR = b"E"
#: A context update pushed over a live connection: the payload is a full
#: service-context blob at a *newer* epoch.  The worker re-warms its
#: handle and answers with a fresh HELLO (its new digest) — the
#: in-place analogue of re-provisioning, so an epoch transition does
#: not tear down the worker fleet.
FRAME_KIND_CONTEXT = b"C"
FRAME_KINDS = (FRAME_KIND_HELLO, FRAME_KIND_JOB, FRAME_KIND_OUTCOME,
               FRAME_KIND_ERROR, FRAME_KIND_CONTEXT)


def encode_frame(kind: bytes, payload: bytes,
                 request_id: int = 0) -> bytes:
    """One wire frame: header (magic, version, kind, request id,
    length) + payload."""
    if kind not in FRAME_KINDS:
        raise SerializationError(f"unknown frame kind {kind!r}")
    if len(payload) > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    return FRAME_MAGIC + bytes([FRAME_VERSION]) + kind + \
        _u64(request_id) + _u32(len(payload)) + payload


def decode_frame_header(header: bytes) -> Tuple[bytes, int, int]:
    """Validate a frame header; returns ``(kind, request_id,
    payload_length)``.

    Raises :class:`~repro.errors.SerializationError` on anything that
    is not a well-formed current-version header.  A failure here means
    the byte stream cannot be re-synchronized (the length field is
    untrustworthy), so transports must close the connection rather than
    skip the frame.  The magic and version checks come first and sit at
    version-independent offsets, so a peer speaking an older frame
    version is refused with the version-mismatch error below — a typed
    refusal, never a misparse of its differently-shaped header.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise SerializationError(
            f"truncated frame header: {len(header)} of "
            f"{FRAME_HEADER_BYTES} bytes")
    if header[:4] != FRAME_MAGIC:
        raise SerializationError(
            f"bad frame magic {header[:4]!r} (expected {FRAME_MAGIC!r})")
    version = header[4]
    if version != FRAME_VERSION:
        raise SerializationError(
            f"unsupported frame version {version} (this end speaks "
            f"{FRAME_VERSION}; both ends must upgrade together)")
    kind = header[5:6]
    if kind not in FRAME_KINDS:
        raise SerializationError(f"unknown frame kind {kind!r}")
    request_id = int.from_bytes(header[6:14], "big")
    length = int.from_bytes(header[14:18], "big")
    if length > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            "cap")
    return kind, request_id, length


def service_context_digest(context_blob: bytes) -> bytes:
    """SHA-256 of an encoded service context — the handshake's identity.

    Two endpoints agree on scheme, curve, threshold parameters, public
    key, shares and verification keys iff their context blobs are
    byte-identical (the encoding is canonical), so comparing digests at
    HELLO time catches every misprovisioning — wrong keys, wrong
    backend, stale committee — before any job is accepted.
    """
    return hashlib.sha256(context_blob).digest()


def hello_mac(psk: bytes, digest: bytes) -> bytes:
    """The HELLO authenticator: HMAC-SHA256 of the context digest under
    a pre-shared key.

    The digest already binds the whole service context, so MACing it
    proves the peer holds the deployment's PSK without adding a round
    trip — closing the gap where anyone who could *observe* a context
    blob (it contains no secrets a worker doesn't need, but it is not
    secret either) could speak the protocol.  An empty MAC field means
    "no PSK configured"; both ends must agree, exactly like the digest.
    """
    return hmac.new(psk, digest, hashlib.sha256).digest()


def encode_hello(group_name: str, digest: bytes,
                 mac: bytes = b"") -> bytes:
    """The HELLO frame payload: backend name + service-context digest +
    the (possibly empty) PSK authenticator from :func:`hello_mac`."""
    if len(digest) != 32:
        raise SerializationError(
            f"context digest must be 32 bytes, got {len(digest)}")
    if len(mac) not in (0, 32):
        raise SerializationError(
            f"hello MAC must be empty or 32 bytes, got {len(mac)}")
    return _packed(group_name.encode("utf-8")) + _packed(digest) + \
        _packed(mac)


def decode_hello(payload: bytes) -> Tuple[str, bytes, bytes]:
    """Parse a HELLO payload; returns ``(group_name, digest, mac)``."""
    reader = _Reader(payload)
    group_name = _utf8(reader.packed())
    digest = reader.packed()
    mac = reader.packed()
    reader.done()
    if len(digest) != 32:
        raise SerializationError(
            f"context digest must be 32 bytes, got {len(digest)}")
    if len(mac) not in (0, 32):
        raise SerializationError(
            f"hello MAC must be empty or 32 bytes, got {len(mac)}")
    return group_name, digest, mac
