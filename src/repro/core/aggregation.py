"""The aggregation-enabled threshold scheme (Appendix G of the paper).

Differences from the Section 3 scheme:

* public parameters gain two extra G generators ``g, h``;
* during Dist-Keygen each dealer additionally broadcasts
  ``(Z_i0, R_i0) = (g^{-a_i10} h^{-a_i20}, g^{-b_i10} h^{-b_i20})`` — a
  one-time LHSPS on the vector (g, h) under its own commitment key — and
  dealers whose extra values fail the pairing sanity check are
  disqualified;
* the public key carries ``(Z, R) = (prod Z_i0, prod R_i0)``, a built-in
  proof of key sanity that Aggregate-Verify checks for every involved key
  (this replaces registered-key assumptions: the reduction can strip
  adversarial keys' contributions out of a fake aggregate);
* Share-Sign binds the public key into the hash: ``H(PK || M)``;
* ``Aggregate`` multiplies signatures componentwise;
  ``Aggregate-Verify`` checks one product of 2 + 2*l pairings plus l key
  sanity checks (vs 4*l pairings for l separate verifications).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.keys import (
    PartialSignature, PrivateKeyShare, Signature, VerificationKey,
)
from repro.core.scheme import LJYThresholdScheme
from repro.errors import CombineError, ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.polynomial import Polynomial
from repro.sharing.shamir import validate_threshold


@dataclass(frozen=True)
class AggThresholdParams:
    """Section 3 params plus the extra generators (g, h)."""

    group: BilinearGroup
    t: int
    n: int
    g_z: GroupElement
    g_r: GroupElement
    g: GroupElement
    h: GroupElement
    hash_domain: str = "LJY14:agg:H"

    @classmethod
    def generate(cls, group: BilinearGroup, t: int, n: int,
                 label: str = "LJY14:agg") -> "AggThresholdParams":
        validate_threshold(t, n)
        return cls(
            group=group, t=t, n=n,
            g_z=group.derive_g2(f"{label}:g_z"),
            g_r=group.derive_g2(f"{label}:g_r"),
            g=group.derive_g1(f"{label}:g"),
            h=group.derive_g1(f"{label}:h"),
            hash_domain=f"{label}:H",
        )

    def hash_for_key(self, public_key: "AggPublicKey",
                     message: bytes) -> Tuple[GroupElement, GroupElement]:
        """``H(PK || M)`` — the key-prefixed random oracle of Appendix G."""
        key_digest = hashlib.sha256(public_key.to_bytes()).digest()
        h1, h2 = self.group.hash_to_g1_vector(
            key_digest + message, 2, self.hash_domain)
        return (h1, h2)


@dataclass(frozen=True)
class AggPublicKey:
    """``PK = (params, (g_hat_1, g_hat_2), Z, R)``."""

    params: AggThresholdParams
    g_1: GroupElement
    g_2: GroupElement
    z: GroupElement
    r: GroupElement

    def to_bytes(self) -> bytes:
        return (self.g_1.to_bytes() + self.g_2.to_bytes()
                + self.z.to_bytes() + self.r.to_bytes())

    def sanity_check(self) -> bool:
        """``e(Z, g_z) e(R, g_r) e(g, g_1) e(h, g_2) = 1`` (Appendix G)."""
        p = self.params
        return p.group.pairing_product_is_one([
            (self.z, p.g_z), (self.r, p.g_r),
            (p.g, self.g_1), (p.h, self.g_2),
        ])


class LJYAggregateScheme:
    """Threshold signatures with unrestricted aggregation (Appendix G)."""

    def __init__(self, params: AggThresholdParams):
        self.params = params
        self.group = params.group

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def dealer_keygen(self, rng=None):
        """Centralized analogue of the Appendix G Dist-Keygen."""
        order = self.group.order
        t, n = self.params.t, self.params.n
        polys = {
            (k, name): Polynomial.random(t, order, rng=rng)
            for k in (1, 2) for name in ("A", "B")
        }
        a_10 = polys[(1, "A")].constant_term
        b_10 = polys[(1, "B")].constant_term
        a_20 = polys[(2, "A")].constant_term
        b_20 = polys[(2, "B")].constant_term
        p = self.params
        public_key = AggPublicKey(
            params=p,
            g_1=(p.g_z ** a_10) * (p.g_r ** b_10),
            g_2=(p.g_z ** a_20) * (p.g_r ** b_20),
            z=(p.g ** (-a_10)) * (p.h ** (-a_20)),
            r=(p.g ** (-b_10)) * (p.h ** (-b_20)),
        )
        shares = {
            i: PrivateKeyShare(
                index=i,
                a_1=polys[(1, "A")](i), b_1=polys[(1, "B")](i),
                a_2=polys[(2, "A")](i), b_2=polys[(2, "B")](i),
            )
            for i in range(1, n + 1)
        }
        verification_keys = {
            i: VerificationKey(
                index=i,
                v_1=(p.g_z ** shares[i].a_1) * (p.g_r ** shares[i].b_1),
                v_2=(p.g_z ** shares[i].a_2) * (p.g_r ** shares[i].b_2),
            )
            for i in shares
        }
        return public_key, shares, verification_keys

    # ------------------------------------------------------------------
    # Threshold signing (key-prefixed hash, otherwise as Section 3)
    # ------------------------------------------------------------------
    def share_sign(self, public_key: AggPublicKey, share: PrivateKeyShare,
                   message: bytes) -> PartialSignature:
        h_1, h_2 = self.params.hash_for_key(public_key, message)
        z = (h_1 ** (-share.a_1)) * (h_2 ** (-share.a_2))
        r = (h_1 ** (-share.b_1)) * (h_2 ** (-share.b_2))
        return PartialSignature(index=share.index, z=z, r=r)

    def share_verify(self, public_key: AggPublicKey,
                     verification_key: VerificationKey, message: bytes,
                     partial: PartialSignature) -> bool:
        if partial.index != verification_key.index:
            return False
        h_1, h_2 = self.params.hash_for_key(public_key, message)
        p = self.params
        return self.group.pairing_product_is_one([
            (partial.z, p.g_z),
            (partial.r, p.g_r),
            (h_1, verification_key.v_1),
            (h_2, verification_key.v_2),
        ])

    def combine(self, public_key: AggPublicKey,
                verification_keys: Mapping[int, VerificationKey],
                message: bytes,
                partials: Iterable[PartialSignature],
                verify_shares: bool = True) -> Signature:
        """Identical to Section 3 Combine (Lagrange in the exponent)."""
        from repro.math.lagrange import lagrange_coefficients
        t = self.params.t
        usable: Dict[int, PartialSignature] = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = verification_keys.get(partial.index)
                if vk is None or not self.share_verify(
                        public_key, vk, message, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == t + 1:
                break
        if len(usable) < t + 1:
            raise CombineError(
                f"need {t + 1} valid partial signatures, got {len(usable)}")
        coefficients = lagrange_coefficients(usable.keys(), self.group.order)
        z = r = None
        for index, partial in usable.items():
            weight = coefficients[index]
            z_term = partial.z ** weight
            r_term = partial.r ** weight
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
        return Signature(z=z, r=r)

    def verify(self, public_key: AggPublicKey, message: bytes,
               signature: Signature) -> bool:
        """Single-signature verification = Aggregate-Verify with l = 1."""
        return self.aggregate_verify(
            [(public_key, message)], signature)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self, items: Sequence[Tuple[AggPublicKey, Signature,
                                              bytes]]) -> Signature:
        """Multiply verified signatures into one (Appendix G Aggregate).

        Raises :class:`ParameterError` on malformed keys and
        :class:`CombineError` if any input signature does not verify, as
        the paper's Aggregate returns bottom in those cases.
        """
        if not items:
            raise ParameterError("nothing to aggregate")
        z = r = None
        for public_key, signature, message in items:
            if not public_key.sanity_check():
                raise ParameterError("public key fails the sanity check")
            if not self.verify(public_key, message, signature):
                raise CombineError("refusing to aggregate invalid signature")
            z = signature.z if z is None else z * signature.z
            r = signature.r if r is None else r * signature.r
        return Signature(z=z, r=r)

    def aggregate_verify(self,
                         items: Sequence[Tuple[AggPublicKey, bytes]],
                         signature: Signature) -> bool:
        """One product of 2 + 2*l pairings plus l key sanity checks."""
        if not items:
            return False
        p = self.params
        pairs = [(signature.z, p.g_z), (signature.r, p.g_r)]
        for public_key, message in items:
            if not public_key.sanity_check():
                return False
            h_1, h_2 = p.hash_for_key(public_key, message)
            pairs.append((h_1, public_key.g_1))
            pairs.append((h_2, public_key.g_2))
        return self.group.pairing_product_is_one(pairs)


def scheme_view(params: AggThresholdParams) -> LJYThresholdScheme:
    """A Section 3 scheme sharing this instance's generators.

    Useful for tests that compare the two constructions on identical keys.
    """
    from repro.core.keys import ThresholdParams
    base = ThresholdParams(
        group=params.group, t=params.t, n=params.n,
        g_z=params.g_z, g_r=params.g_r, hash_domain=params.hash_domain)
    return LJYThresholdScheme(base)


# ---------------------------------------------------------------------------
# Distributed key generation (Appendix G Dist-Keygen)
# ---------------------------------------------------------------------------

from repro.dkg.pedersen_dkg import (  # noqa: E402  (extends the DKG layer)
    DKGResult, PedersenDKGPlayer, run_pedersen_dkg,
)


class AggDKGPlayer(PedersenDKGPlayer):
    """Dist-Keygen participant that also publishes ``(Z_i0, R_i0)``.

    The extra broadcast is a one-time LHSPS on the vector (g, h) under the
    dealer's own constant-term commitments; dealers whose values fail the
    pairing check are disqualified (step 3 of the Appendix G protocol).
    The check uses only broadcast data, so all honest players apply it
    identically.
    """

    #: Set by :func:`run_agg_dkg` before the protocol starts.
    agg_params: AggThresholdParams = None

    def extra_broadcast_payload(self):
        a_10, b_10 = self.dealings[0].secret_pair
        a_20, b_20 = self.dealings[1].secret_pair
        p = self.agg_params
        z_i0 = (p.g ** (-a_10)) * (p.h ** (-a_20))
        r_i0 = (p.g ** (-b_10)) * (p.h ** (-b_20))
        return (z_i0, r_i0)

    def validate_extra(self, dealer: int, commitments, extra) -> bool:
        if extra is None:
            return False
        z_0, r_0 = extra
        p = self.agg_params
        return self.group.pairing_product_is_one([
            (z_0, self.g_z), (r_0, self.g_r),
            (p.g, commitments[0][0]), (p.h, commitments[1][0]),
        ])


def run_agg_dkg(params: AggThresholdParams, adversary=None, rng=None):
    """Run the Appendix G Dist-Keygen; returns (results, network)."""

    class _Player(AggDKGPlayer):
        agg_params = params

    return run_pedersen_dkg(
        params.group, params.g_z, params.g_r, params.t, params.n,
        num_pairs=2, adversary=adversary, rng=rng, player_cls=_Player)


def dkg_result_to_agg_keys(params: AggThresholdParams, result: DKGResult):
    """Assemble the Appendix G public key (with Z, R) from a DKG result."""
    z = r = None
    for dealer in result.qualified:
        extra = result.extras.get(dealer)
        if extra is None:
            raise ParameterError(
                f"qualified dealer {dealer} has no (Z_0, R_0) broadcast")
        z = extra[0] if z is None else z * extra[0]
        r = extra[1] if r is None else r * extra[1]
    public_key = AggPublicKey(
        params=params,
        g_1=result.public_components[0],
        g_2=result.public_components[1],
        z=z, r=r,
    )
    share = PrivateKeyShare(
        index=result.index,
        a_1=result.share_pairs[0][0], b_1=result.share_pairs[0][1],
        a_2=result.share_pairs[1][0], b_2=result.share_pairs[1][1],
    )
    verification_keys = {
        j: VerificationKey(index=j, v_1=vks[0], v_2=vks[1])
        for j, vks in result.verification_keys.items()
    }
    return public_key, share, verification_keys
