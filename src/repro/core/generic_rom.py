"""Generic construction: one-time LHSPS + random oracle => full signatures.

Appendix D.1 of the paper: given *any* one-time linearly homomorphic SPS
``Pi`` for vectors of dimension K+1 and a random oracle
``H : {0,1}* -> G^{K+1}``, the scheme

    Sign(sk, M)   = Pi.Sign(sk, H(M))
    Verify(pk, M) = Pi.Verify(pk, H(M), sigma)

is an EUF-CMA-secure ordinary signature under the K-linear assumption
(K = 1: DDH/SXDH; K = 2: DLIN).  Instantiating Pi with the DP scheme of
Section 2.3 recovers the centralized version of the paper's main scheme;
instantiating it with the SDP scheme recovers the Appendix F variant.

This module is written against the :class:`~repro.lhsps.template.OneTimeLHSPS`
template, so any further LHSPS plugs in unchanged.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup
from repro.lhsps.template import OneTimeLHSPS


class GenericROMSignature:
    """The Appendix D.1 wrapper around a one-time LHSPS."""

    def __init__(self, lhsps: OneTimeLHSPS, k_linear: int,
                 hash_domain: str = "LJY14:D1:H"):
        if lhsps.dimension != k_linear + 1:
            raise ParameterError(
                "the LHSPS must sign vectors of dimension K + 1")
        self.lhsps = lhsps
        self.k_linear = k_linear
        self.hash_domain = hash_domain

    @property
    def group(self) -> BilinearGroup:
        return self.lhsps.group

    def keygen(self, rng=None):
        """Key pair of the underlying LHSPS (PK = pk, SK = sk)."""
        return self.lhsps.keygen(rng)

    def hash_message(self, message: bytes):
        return self.group.hash_to_g1_vector(
            message, self.k_linear + 1, self.hash_domain)

    def sign(self, sk, message: bytes):
        return self.lhsps.sign(sk, self.hash_message(message))

    def verify(self, pk, message: bytes, signature) -> bool:
        return self.lhsps.verify(pk, self.hash_message(message), signature)
