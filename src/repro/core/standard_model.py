"""The standard-model threshold scheme (Section 4 of the paper).

A signature is a Groth-Sahai NIWI proof of knowledge of a one-time LHSPS
``(z, r) = (g^{-A(0)}, g^{-B(0)})`` on the fixed one-dimensional vector
``g``, under a per-message CRS ``(f, f_M)`` assembled from the message bits
(Malkin et al. technique).  Partial signatures are the same proofs under
each server's share ``(A(i), B(i))`` and interpolate — commitments and
proofs alike — by Lagrange in the exponent, after which Combine
re-randomizes so the result looks freshly generated.

Signature size: 4 G elements + 2 G_hat elements = 2048 bits on BN254,
matching the paper's Section 4 size claim.  The DKG is the same Pedersen
protocol with a single shared pair per player.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.keys import ThresholdParams
from repro.errors import CombineError, ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.gs.crs import GSParams
from repro.gs.proofs import (
    GSCommitment, GSProof, commit, prove_linear, randomize, verify_linear,
)
from repro.math.lagrange import lagrange_coefficients
from repro.math.polynomial import Polynomial
from repro.math.rng import random_scalar
from repro.sharing.shamir import validate_threshold


@dataclass(frozen=True)
class SMParams:
    """Public parameters: bilinear groups, g, (g_z, g_r) and the GS CRS."""

    group: BilinearGroup
    t: int
    n: int
    g: GroupElement
    g_z: GroupElement
    g_r: GroupElement
    gs: GSParams

    @classmethod
    def generate(cls, group: BilinearGroup, t: int, n: int,
                 bit_length: int = 128,
                 label: str = "LJY14:sm") -> "SMParams":
        validate_threshold(t, n)
        return cls(
            group=group, t=t, n=n,
            g=group.derive_g1(f"{label}:g"),
            g_z=group.derive_g2(f"{label}:g_z"),
            g_r=group.derive_g2(f"{label}:g_r"),
            gs=GSParams.generate(group, bit_length, label=f"{label}:crs"),
        )


@dataclass(frozen=True)
class SMPublicKey:
    """``PK = (params, g_hat_1)``."""

    params: SMParams
    g_1: GroupElement

    def to_bytes(self) -> bytes:
        return self.g_1.to_bytes()


@dataclass(frozen=True)
class SMPrivateKeyShare:
    """``SK_i = (A(i), B(i))`` — two Z_p scalars (O(1) storage)."""

    index: int
    a: int
    b: int

    def __add__(self, other: "SMPrivateKeyShare") -> "SMPrivateKeyShare":
        if self.index != other.index:
            raise ParameterError("cannot add shares of different players")
        return SMPrivateKeyShare(self.index, self.a + other.a,
                                 self.b + other.b)

    def reduce(self, order: int) -> "SMPrivateKeyShare":
        return SMPrivateKeyShare(self.index, self.a % order, self.b % order)


@dataclass(frozen=True)
class SMVerificationKey:
    """``VK_i = g_z^{A(i)} g_r^{B(i)}``."""

    index: int
    v: GroupElement

    def to_bytes(self) -> bytes:
        return self.v.to_bytes()


@dataclass(frozen=True)
class SMSignature:
    """``(C_z, C_r, pi_hat)`` in G^4 x G_hat^2 — 2048 bits on BN254."""

    c_z: GSCommitment
    c_r: GSCommitment
    proof: GSProof

    def to_bytes(self) -> bytes:
        return (self.c_z.to_bytes() + self.c_r.to_bytes()
                + self.proof.to_bytes())

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


@dataclass(frozen=True)
class SMPartialSignature:
    index: int
    c_z: GSCommitment
    c_r: GSCommitment
    proof: GSProof

    def to_bytes(self) -> bytes:
        return (self.c_z.to_bytes() + self.c_r.to_bytes()
                + self.proof.to_bytes())


class LJYStandardModelScheme:
    """The Section 4 construction."""

    def __init__(self, params: SMParams):
        self.params = params
        self.group = params.group

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def dealer_keygen(self, rng=None):
        """Trusted-dealer analogue of the Dist-Keygen of Section 4."""
        order = self.group.order
        t, n = self.params.t, self.params.n
        poly_a = Polynomial.random(t, order, rng=rng)
        poly_b = Polynomial.random(t, order, rng=rng)
        shares = {
            i: SMPrivateKeyShare(i, poly_a(i), poly_b(i))
            for i in range(1, n + 1)
        }
        public_key = SMPublicKey(
            params=self.params,
            g_1=(self.params.g_z ** poly_a.constant_term)
            * (self.params.g_r ** poly_b.constant_term),
        )
        verification_keys = {
            i: self.verification_key_for(shares[i]) for i in shares
        }
        return public_key, shares, verification_keys

    def verification_key_for(
            self, share: SMPrivateKeyShare) -> SMVerificationKey:
        return SMVerificationKey(
            index=share.index,
            v=(self.params.g_z ** share.a) * (self.params.g_r ** share.b),
        )

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def _sign_value(self, z: GroupElement, r: GroupElement, message: bytes,
                    rng=None) -> Tuple[GSCommitment, GSCommitment, GSProof]:
        """Commit to (z, r) under the message CRS and prove the equation."""
        order = self.group.order
        crs = self.params.gs.crs_for_message(message)
        nu_z = (random_scalar(order, rng), random_scalar(order, rng))
        nu_r = (random_scalar(order, rng), random_scalar(order, rng))
        c_z = commit(crs, z, *nu_z, group=self.group)
        c_r = commit(crs, r, *nu_r, group=self.group)
        proof = prove_linear(
            constants=[self.params.g_z, self.params.g_r],
            randomness=[nu_z, nu_r], group=self.group)
        return c_z, c_r, proof

    def share_sign(self, share: SMPrivateKeyShare, message: bytes,
                   rng=None) -> SMPartialSignature:
        """``(z_i, r_i) = (g^{-A(i)}, g^{-B(i)})`` committed and proven."""
        z = self.params.g ** (-share.a)
        r = self.params.g ** (-share.b)
        c_z, c_r, proof = self._sign_value(z, r, message, rng)
        return SMPartialSignature(share.index, c_z, c_r, proof)

    def share_verify(self, public_key: SMPublicKey,
                     verification_key: SMVerificationKey, message: bytes,
                     partial: SMPartialSignature) -> bool:
        if partial.index != verification_key.index:
            return False
        crs = self.params.gs.crs_for_message(message)
        return verify_linear(
            self.group, crs,
            commitments=[partial.c_z, partial.c_r],
            constants=[self.params.g_z, self.params.g_r],
            target=(self.params.g, verification_key.v),
            proof=partial.proof)

    # ------------------------------------------------------------------
    # Combining and verification
    # ------------------------------------------------------------------
    def combine(self, public_key: SMPublicKey,
                verification_keys: Mapping[int, SMVerificationKey],
                message: bytes,
                partials: Iterable[SMPartialSignature],
                verify_shares: bool = True, rng=None) -> SMSignature:
        """Lagrange-combine commitments and proofs, then re-randomize."""
        t = self.params.t
        usable: Dict[int, SMPartialSignature] = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = verification_keys.get(partial.index)
                if vk is None or not self.share_verify(
                        public_key, vk, message, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == t + 1:
                break
        if len(usable) < t + 1:
            raise CombineError(
                f"need {t + 1} valid partial signatures, got {len(usable)}")
        coefficients = lagrange_coefficients(usable.keys(), self.group.order)
        c_z = c_r = proof = None
        for index, partial in usable.items():
            weight = coefficients[index]
            cz_term = partial.c_z.exp(weight)
            cr_term = partial.c_r.exp(weight)
            pf_term = partial.proof.exp(weight)
            c_z = cz_term if c_z is None else c_z.op(cz_term)
            c_r = cr_term if c_r is None else c_r.op(cr_term)
            proof = pf_term if proof is None else proof.op(pf_term)
        crs = self.params.gs.crs_for_message(message)
        (c_z, c_r), proof = randomize(
            self.group, crs, [c_z, c_r],
            [self.params.g_z, self.params.g_r], proof, rng=rng)
        return SMSignature(c_z=c_z, c_r=c_r, proof=proof)

    def verify(self, public_key: SMPublicKey, message: bytes,
               signature: SMSignature) -> bool:
        crs = self.params.gs.crs_for_message(message)
        return verify_linear(
            self.group, crs,
            commitments=[signature.c_z, signature.c_r],
            constants=[self.params.g_z, self.params.g_r],
            target=(self.params.g, public_key.g_1),
            proof=signature.proof)

    # ------------------------------------------------------------------
    # Centralized signing (tests / size accounting)
    # ------------------------------------------------------------------
    def sign_with_master(self, master: Tuple[int, int], message: bytes,
                         rng=None) -> SMSignature:
        a_0, b_0 = master
        z = self.params.g ** (-a_0)
        r = self.params.g ** (-b_0)
        c_z, c_r, proof = self._sign_value(z, r, message, rng)
        return SMSignature(c_z=c_z, c_r=c_r, proof=proof)
