"""Key material and signature types for the Section 3 threshold scheme.

Naming follows the paper:

* ``PublicKey`` holds ``(g_hat_1, g_hat_2)`` plus the public parameters.
* ``PrivateKeyShare`` for player i holds the two pairs
  ``{(A_k(i), B_k(i))}_{k=1,2}`` — four scalars, i.e. **O(1) storage**
  regardless of n (the paper's "short shares" property).
* ``VerificationKey`` holds ``(V_hat_{1,i}, V_hat_{2,i})``.
* ``PartialSignature`` is one server's ``(z_i, r_i)``; ``Signature`` the
  combined ``(z, r)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.groups.api import BilinearGroup, GroupElement
from repro.lhsps.onetime import DPSecretKey

#: Bound on the per-params hash-to-curve memo (messages are arbitrary
#: caller input, so the cache must not grow without limit).
_HASH_CACHE_LIMIT = 256


@dataclass(frozen=True)
class ThresholdParams:
    """Common public parameters ``params`` (Section 3.1).

    ``g_z`` and ``g_r`` are random-oracle-derived generators of G_hat, so
    that nobody knows ``log_{g_z}(g_r)`` and no setup round is needed.
    """

    group: BilinearGroup
    t: int
    n: int
    g_z: GroupElement
    g_r: GroupElement
    hash_domain: str = "LJY14:H"

    def __post_init__(self):
        # The dataclass is frozen (parameters are immutable protocol
        # state); the memo and the pairing preparation below are caches,
        # not state, so they bypass the frozen guard.
        object.__setattr__(self, "_hash_cache", OrderedDict())
        # Every verification equation pairs against g_z and g_r, so their
        # Miller-loop line coefficients are precomputed once here.
        self.group.prepare_pair(self.g_z)
        self.group.prepare_pair(self.g_r)

    @classmethod
    def generate(cls, group: BilinearGroup, t: int, n: int,
                 label: str = "LJY14") -> "ThresholdParams":
        from repro.sharing.shamir import validate_threshold
        validate_threshold(t, n)
        return cls(
            group=group,
            t=t,
            n=n,
            g_z=group.derive_g2(f"{label}:g_z"),
            g_r=group.derive_g2(f"{label}:g_r"),
            hash_domain=f"{label}:H",
        )

    def hash_message(self, message: bytes) -> Tuple[GroupElement, ...]:
        """The random oracle H : {0,1}* -> G x G.

        Memoized (bounded LRU): robust Combine calls Share-Verify for
        every partial signature of the same message, and re-running
        try-and-increment hashing each time dominated its seed cost.
        """
        cache = self._hash_cache
        hit = cache.get(message)
        if hit is not None:
            cache.move_to_end(message)
            return hit
        pair = tuple(self.group.hash_to_g1_vector(message, 2,
                                                  self.hash_domain))
        cache[message] = pair
        if len(cache) > _HASH_CACHE_LIMIT:
            cache.popitem(last=False)
        return pair


@dataclass(frozen=True)
class PublicKey:
    """``PK = (params, (g_hat_1, g_hat_2))``."""

    params: ThresholdParams
    g_1: GroupElement
    g_2: GroupElement

    def to_bytes(self) -> bytes:
        return self.g_1.to_bytes() + self.g_2.to_bytes()


@dataclass(frozen=True)
class PrivateKeyShare:
    """``SK_i = {(A_k(i), B_k(i))}_{k=1,2}`` — four scalars."""

    index: int
    a_1: int
    b_1: int
    a_2: int
    b_2: int

    def as_lhsps_key(self) -> DPSecretKey:
        """View the share as a one-time LHSPS key for dimension-2 vectors."""
        return DPSecretKey(((self.a_1, self.b_1), (self.a_2, self.b_2)))

    def storage_bytes(self, scalar_bytes: int = 32) -> int:
        """Bytes a server must persist — constant in n."""
        return 4 * scalar_bytes

    def __add__(self, other: "PrivateKeyShare") -> "PrivateKeyShare":
        """Used by proactive refresh: add a share of zero."""
        if self.index != other.index:
            raise ValueError("cannot add shares of different players")
        return PrivateKeyShare(
            self.index,
            self.a_1 + other.a_1, self.b_1 + other.b_1,
            self.a_2 + other.a_2, self.b_2 + other.b_2,
        )

    def reduce(self, order: int) -> "PrivateKeyShare":
        return PrivateKeyShare(
            self.index, self.a_1 % order, self.b_1 % order,
            self.a_2 % order, self.b_2 % order)


@dataclass(frozen=True)
class VerificationKey:
    """``VK_i = (V_hat_{1,i}, V_hat_{2,i})`` — publicly computable."""

    index: int
    v_1: GroupElement
    v_2: GroupElement

    def to_bytes(self) -> bytes:
        return self.v_1.to_bytes() + self.v_2.to_bytes()


@dataclass(frozen=True)
class PartialSignature:
    """Player i's non-interactive contribution ``(z_i, r_i)``."""

    index: int
    z: GroupElement
    r: GroupElement

    def to_bytes(self) -> bytes:
        return self.z.to_bytes() + self.r.to_bytes()


@dataclass(frozen=True)
class Signature:
    """A combined full signature ``(z, r)`` — two G elements (512 bits)."""

    z: GroupElement
    r: GroupElement

    def to_bytes(self) -> bytes:
        return self.z.to_bytes() + self.r.to_bytes()

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


#: Convenience alias: a full key-generation output.
KeygenOutput = Tuple[PublicKey, Dict[int, PrivateKeyShare],
                     Dict[int, VerificationKey]]
