"""A proactively-secure threshold signing service (Section 3.3, packaged).

:class:`ProactiveSigningService` wraps the Section 3 scheme, the Pedersen
DKG and the refresh protocol into the object a deployment would actually
operate:

* ``bootstrap()`` runs the one-round distributed key generation;
* ``sign(message, signers)`` collects non-interactive partial signatures
  from a quorum and combines them (robustly by default);
* ``advance_epoch()`` runs the share-refresh protocol, invalidating every
  previously captured share while keeping the public key;
* ``recover(index)`` restores a lost share from t+1 helpers without ever
  reconstructing the master key (Herzberg et al. style);
* per-epoch bookkeeping records which servers were flagged as corrupted
  so operators can rotate them out between epochs.

The service object *simulates* the server fleet in-process (each server's
share lives in ``self._shares``); in a real deployment each share would
sit on its own machine and ``sign`` would be an RPC fan-out — the
protocol messages and costs are identical, which is what the experiments
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.keys import (
    PrivateKeyShare, PublicKey, Signature, ThresholdParams, VerificationKey,
)
from repro.core.scheme import LJYThresholdScheme
from repro.dkg.pedersen_dkg import dkg_result_to_keys, run_pedersen_dkg
from repro.dkg.refresh import recover_share, run_refresh
from repro.errors import CombineError, ParameterError, ProtocolError
from repro.groups.api import BilinearGroup


@dataclass
class EpochReport:
    """What happened during one epoch (for operator dashboards/tests)."""

    epoch: int
    refresh_rounds: int = 0
    refresh_messages: int = 0
    signatures_issued: int = 0
    flagged_servers: Set[int] = field(default_factory=set)


class ProactiveSigningService:
    """Operational wrapper: DKG + non-interactive signing + refresh."""

    def __init__(self, group: BilinearGroup, t: int, n: int,
                 label: str = "proactive-service", rng=None):
        self.params = ThresholdParams.generate(group, t, n, label=label)
        self.scheme = LJYThresholdScheme(self.params)
        self.group = group
        self.rng = rng
        self.public_key: Optional[PublicKey] = None
        self.verification_keys: Dict[int, VerificationKey] = {}
        self._shares: Dict[int, PrivateKeyShare] = {}
        self.epoch = 0
        self.reports: List[EpochReport] = [EpochReport(epoch=0)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, adversary=None) -> PublicKey:
        """Run Dist-Keygen; returns the jointly generated public key."""
        if self.public_key is not None:
            raise ProtocolError("service already bootstrapped")
        results, network = run_pedersen_dkg(
            self.group, self.params.g_z, self.params.g_r,
            self.params.t, self.params.n, adversary=adversary, rng=self.rng)
        for index, result in results.items():
            public_key, share, vks = dkg_result_to_keys(self.scheme, result)
            self._shares[index] = share
            self.public_key = public_key
            self.verification_keys = vks
        if self.public_key is None:
            raise ProtocolError("no honest player finished the DKG")
        report = self.reports[-1]
        report.refresh_rounds = network.metrics.communication_rounds
        report.refresh_messages = network.metrics.total_messages
        return self.public_key

    def advance_epoch(self, adversary=None) -> EpochReport:
        """Refresh all live shares; old shares become useless."""
        self._require_ready()
        new_shares, new_vks, network = run_refresh(
            self.group, self.params.g_z, self.params.g_r,
            self.params.t, self.params.n,
            self._shares, self.verification_keys,
            adversary=adversary, rng=self.rng)
        self._shares = new_shares
        self.verification_keys = new_vks
        self.epoch += 1
        report = EpochReport(
            epoch=self.epoch,
            refresh_rounds=network.metrics.communication_rounds,
            refresh_messages=network.metrics.total_messages)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign(self, message: bytes,
             signers: Optional[Iterable[int]] = None,
             robust: bool = True) -> Signature:
        """Collect partial signatures from ``signers`` and combine.

        Servers that contribute an invalid partial signature are flagged
        in the current epoch report (and filtered out when ``robust``).
        """
        self._require_ready()
        if signers is None:
            signers = sorted(self._shares)[: self.params.t + 1]
        partials = []
        for index in signers:
            share = self._shares.get(index)
            if share is None:
                continue
            partials.append(self.scheme.share_sign(share, message))
        for partial in partials:
            vk = self.verification_keys.get(partial.index)
            if vk is None or not self.scheme.share_verify(
                    self.public_key, vk, message, partial):
                self.reports[-1].flagged_servers.add(partial.index)
        signature = self.scheme.combine(
            self.public_key, self.verification_keys, message, partials,
            verify_shares=robust)
        if not robust and not self.scheme.verify(
                self.public_key, message, signature):
            # Optimistic path failed: retry with filtering.
            signature = self.scheme.combine(
                self.public_key, self.verification_keys, message, partials,
                verify_shares=True)
        self.reports[-1].signatures_issued += 1
        return signature

    def verify(self, message: bytes, signature: Signature) -> bool:
        self._require_ready()
        return self.scheme.verify(self.public_key, message, signature)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def corrupt_share_detected(self, index: int) -> None:
        """Operator marks a server as compromised; its share is dropped
        until :meth:`recover` restores it (typically next epoch)."""
        self._require_ready()
        if index not in self._shares:
            raise ParameterError(f"no live share for server {index}")
        del self._shares[index]
        self.reports[-1].flagged_servers.add(index)

    def recover(self, index: int) -> None:
        """Restore server ``index``'s share from t+1 helpers."""
        self._require_ready()
        helpers = {
            i: share for i, share in self._shares.items() if i != index
        }
        if len(helpers) < self.params.t + 1:
            raise CombineError("not enough helpers to recover the share")
        self._shares[index] = recover_share(self.scheme, index, helpers)

    def live_servers(self) -> List[int]:
        return sorted(self._shares)

    # ------------------------------------------------------------------
    def _require_ready(self) -> None:
        if self.public_key is None:
            raise ProtocolError("bootstrap() the service first")
