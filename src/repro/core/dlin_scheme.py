"""The DLIN-based threshold scheme (Appendix F of the paper).

A variant of the Section 3 construction that stays adaptively secure even
in groups with an efficiently computable isomorphism between G and G_hat,
at the cost of one extra group element per signature (768 vs 512 bits) and
a second verification equation.  Built on the SDP-based one-time LHSPS:

* params carry four G_hat generators ``(g_z, g_r, h_z, h_u)``;
* messages hash to G^3;
* each player holds three scalar triples ``(A_k(i), B_k(i), C_k(i))``;
* partial signatures are ``(z_i, r_i, u_i)`` in G^3 verified against two
  pairing-product equations;
* the public key is ``{(g_hat_k, h_hat_k)}_{k=1..3}``.

``Dist-Keygen`` (also per Appendix F) shares triples with *dual* Pedersen
commitments ``V_hat_ikl = g_z^{a} g_r^{b}`` and
``W_hat_ikl = h_z^{a} h_u^{c}``, both checked by every receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CombineError, ParameterError, ProtocolError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.lagrange import lagrange_coefficients
from repro.math.polynomial import Polynomial
from repro.net.player import Player
from repro.net.simulator import Message, SyncNetwork, broadcast, private
from repro.sharing.shamir import validate_threshold

#: Number of hashed message components (vectors in G^3).
DIM = 3


@dataclass(frozen=True)
class DLINParams:
    group: BilinearGroup
    t: int
    n: int
    g_z: GroupElement
    g_r: GroupElement
    h_z: GroupElement
    h_u: GroupElement
    hash_domain: str = "LJY14:dlin:H"

    @classmethod
    def generate(cls, group: BilinearGroup, t: int, n: int,
                 label: str = "LJY14:dlin") -> "DLINParams":
        validate_threshold(t, n)
        return cls(
            group=group, t=t, n=n,
            g_z=group.derive_g2(f"{label}:g_z"),
            g_r=group.derive_g2(f"{label}:g_r"),
            h_z=group.derive_g2(f"{label}:h_z"),
            h_u=group.derive_g2(f"{label}:h_u"),
            hash_domain=f"{label}:H",
        )

    def hash_message(self, message: bytes) -> List[GroupElement]:
        return self.group.hash_to_g1_vector(message, DIM, self.hash_domain)


@dataclass(frozen=True)
class DLINPublicKey:
    """``PK = {(g_hat_k, h_hat_k)}_{k=1..3}``."""

    params: DLINParams
    g_ks: Tuple[GroupElement, ...]
    h_ks: Tuple[GroupElement, ...]

    def to_bytes(self) -> bytes:
        return b"".join(e.to_bytes() for e in (*self.g_ks, *self.h_ks))


@dataclass(frozen=True)
class DLINPrivateKeyShare:
    """``SK_i = {(A_k(i), B_k(i), C_k(i))}_{k=1..3}`` — nine scalars."""

    index: int
    triples: Tuple[Tuple[int, int, int], ...]

    def storage_bytes(self, scalar_bytes: int = 32) -> int:
        return 9 * scalar_bytes


@dataclass(frozen=True)
class DLINVerificationKey:
    """``VK_i = ({U_hat_k,i}, {Z_hat_k,i})``."""

    index: int
    u_ks: Tuple[GroupElement, ...]
    z_ks: Tuple[GroupElement, ...]


@dataclass(frozen=True)
class DLINPartialSignature:
    index: int
    z: GroupElement
    r: GroupElement
    u: GroupElement


@dataclass(frozen=True)
class DLINSignature:
    """``(z, r, u)`` in G^3 — 768 bits on BN254."""

    z: GroupElement
    r: GroupElement
    u: GroupElement

    def to_bytes(self) -> bytes:
        return self.z.to_bytes() + self.r.to_bytes() + self.u.to_bytes()

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


class LJYDLINScheme:
    """The Appendix F construction."""

    def __init__(self, params: DLINParams):
        self.params = params
        self.group = params.group

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def dealer_keygen(self, rng=None):
        order = self.group.order
        t, n = self.params.t, self.params.n
        polys = {
            (k, name): Polynomial.random(t, order, rng=rng)
            for k in range(1, DIM + 1) for name in ("A", "B", "C")
        }
        shares = {
            i: DLINPrivateKeyShare(
                index=i,
                triples=tuple(
                    (polys[(k, "A")](i), polys[(k, "B")](i),
                     polys[(k, "C")](i))
                    for k in range(1, DIM + 1)),
            )
            for i in range(1, n + 1)
        }
        masters = tuple(
            (polys[(k, "A")].constant_term, polys[(k, "B")].constant_term,
             polys[(k, "C")].constant_term)
            for k in range(1, DIM + 1))
        public_key = self.public_key_from_master(masters)
        verification_keys = {
            i: self.verification_key_for(shares[i]) for i in shares
        }
        return public_key, shares, verification_keys

    def public_key_from_master(self, masters) -> DLINPublicKey:
        p = self.params
        g_ks = tuple(
            (p.g_z ** a) * (p.g_r ** b) for a, b, _c in masters)
        h_ks = tuple(
            (p.h_z ** a) * (p.h_u ** c) for a, _b, c in masters)
        return DLINPublicKey(params=p, g_ks=g_ks, h_ks=h_ks)

    def verification_key_for(
            self, share: DLINPrivateKeyShare) -> DLINVerificationKey:
        p = self.params
        u_ks = tuple(
            (p.g_z ** a) * (p.g_r ** b) for a, b, _c in share.triples)
        z_ks = tuple(
            (p.h_z ** a) * (p.h_u ** c) for a, _b, c in share.triples)
        return DLINVerificationKey(index=share.index, u_ks=u_ks, z_ks=z_ks)

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def share_sign(self, share: DLINPrivateKeyShare,
                   message: bytes) -> DLINPartialSignature:
        hs = self.params.hash_message(message)
        z = r = u = None
        for h_k, (a, b, c) in zip(hs, share.triples):
            z_term = h_k ** (-a)
            r_term = h_k ** (-b)
            u_term = h_k ** (-c)
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
            u = u_term if u is None else u * u_term
        return DLINPartialSignature(index=share.index, z=z, r=r, u=u)

    def share_verify(self, public_key: DLINPublicKey,
                     verification_key: DLINVerificationKey, message: bytes,
                     partial: DLINPartialSignature) -> bool:
        if partial.index != verification_key.index:
            return False
        hs = self.params.hash_message(message)
        p = self.params
        first = [(partial.z, p.g_z), (partial.r, p.g_r)]
        first += [(h_k, u_k) for h_k, u_k in zip(hs, verification_key.u_ks)]
        if not self.group.pairing_product_is_one(first):
            return False
        second = [(partial.z, p.h_z), (partial.u, p.h_u)]
        second += [(h_k, z_k) for h_k, z_k in zip(hs, verification_key.z_ks)]
        return self.group.pairing_product_is_one(second)

    def combine(self, public_key: DLINPublicKey,
                verification_keys: Mapping[int, DLINVerificationKey],
                message: bytes,
                partials: Iterable[DLINPartialSignature],
                verify_shares: bool = True) -> DLINSignature:
        t = self.params.t
        usable: Dict[int, DLINPartialSignature] = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = verification_keys.get(partial.index)
                if vk is None or not self.share_verify(
                        public_key, vk, message, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == t + 1:
                break
        if len(usable) < t + 1:
            raise CombineError(
                f"need {t + 1} valid partial signatures, got {len(usable)}")
        coefficients = lagrange_coefficients(usable.keys(), self.group.order)
        z = r = u = None
        for index, partial in usable.items():
            weight = coefficients[index]
            z_term = partial.z ** weight
            r_term = partial.r ** weight
            u_term = partial.u ** weight
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
            u = u_term if u is None else u * u_term
        return DLINSignature(z=z, r=r, u=u)

    def verify(self, public_key: DLINPublicKey, message: bytes,
               signature: DLINSignature) -> bool:
        hs = self.params.hash_message(message)
        p = self.params
        first = [(signature.z, p.g_z), (signature.r, p.g_r)]
        first += [(h_k, g_k) for h_k, g_k in zip(hs, public_key.g_ks)]
        if not self.group.pairing_product_is_one(first):
            return False
        second = [(signature.z, p.h_z), (signature.u, p.h_u)]
        second += [(h_k, h_hat_k) for h_k, h_hat_k
                   in zip(hs, public_key.h_ks)]
        return self.group.pairing_product_is_one(second)


# ---------------------------------------------------------------------------
# Dist-Keygen with dual commitments (Appendix F)
# ---------------------------------------------------------------------------

class DLINDKGPlayer(Player):
    """Dist-Keygen participant sharing triples with dual commitments."""

    def __init__(self, index: int, params: DLINParams, rng=None):
        super().__init__(index)
        if params.n < 2 * params.t + 1:
            raise ParameterError("the paper requires n >= 2t + 1")
        self.params = params
        self.group = params.group
        self.rng = rng
        # Sharing polynomials: per k, three degree-t polynomials.
        self.polys: List[Tuple[Polynomial, Polynomial, Polynomial]] = []
        self.received_commitments: Dict[int, list] = {}
        self.received_shares: Dict[int, list] = {}
        self.complaints_against: Dict[int, set] = {}
        self._result = None

    def _deal(self) -> List[Message]:
        order = self.group.order
        t, n = self.params.t, self.params.n
        p = self.params
        commitments = []
        for _k in range(DIM):
            a = Polynomial.random(t, order, rng=self.rng)
            b = Polynomial.random(t, order, rng=self.rng)
            c = Polynomial.random(t, order, rng=self.rng)
            self.polys.append((a, b, c))
            commitments.append([
                ((p.g_z ** a.coeffs[l]) * (p.g_r ** b.coeffs[l]),
                 (p.h_z ** a.coeffs[l]) * (p.h_u ** c.coeffs[l]))
                for l in range(t + 1)
            ])
        outbound = [broadcast(self.index, "commitments",
                              {"commitments": commitments})]
        for j in range(1, n + 1):
            if j != self.index:
                outbound.append(private(
                    self.index, j, "shares",
                    [(a(j), b(j), c(j)) for a, b, c in self.polys]))
        self.received_commitments[self.index] = commitments
        self.received_shares[self.index] = [
            (a(self.index), b(self.index), c(self.index))
            for a, b, c in self.polys]
        return outbound

    def _share_ok(self, dealer: int) -> bool:
        commitments = self.received_commitments.get(dealer)
        shares = self.received_shares.get(dealer)
        if commitments is None or shares is None:
            return False
        p = self.params
        for k in range(DIM):
            a, b, c = shares[k]
            expected_v = (p.g_z ** a) * (p.g_r ** b)
            expected_w = (p.h_z ** a) * (p.h_u ** c)
            prod_v = prod_w = None
            power = 1
            for v_l, w_l in commitments[k]:
                term_v = v_l ** power
                term_w = w_l ** power
                prod_v = term_v if prod_v is None else prod_v * term_v
                prod_w = term_w if prod_w is None else prod_w * term_w
                power = power * self.index % self.group.order
            if expected_v != prod_v or expected_w != prod_w:
                return False
        return True

    def on_round(self, round_no: int,
                 inbox: Sequence[Message]) -> List[Message]:
        if round_no == 0:
            return self._deal()
        if round_no == 1:
            for message in inbox:
                if message.kind == "commitments":
                    commitments = message.payload["commitments"]
                    if (len(commitments) == DIM and all(
                            len(c) == self.params.t + 1
                            for c in commitments)):
                        self.received_commitments[message.sender] = (
                            commitments)
                elif (message.kind == "shares"
                      and message.recipient == self.index):
                    shares = message.payload
                    if len(shares) == DIM:
                        self.received_shares[message.sender] = [
                            tuple(int(x) for x in triple)
                            for triple in shares]
            outbound = []
            for dealer in range(1, self.params.n + 1):
                if dealer != self.index and not self._share_ok(dealer):
                    outbound.append(broadcast(
                        self.index, "complaint", {"accused": dealer}))
            return outbound
        if round_no == 2:
            for message in inbox:
                if message.kind == "complaint":
                    accused = message.payload.get("accused")
                    if isinstance(accused, int):
                        self.complaints_against.setdefault(
                            accused, set()).add(message.sender)
            complainers = self.complaints_against.get(self.index, set())
            return [
                broadcast(self.index, "response", {
                    "complainer": complainer,
                    "shares": [
                        (a(complainer), b(complainer), c(complainer))
                        for a, b, c in self.polys],
                })
                for complainer in sorted(complainers)
            ]
        return []

    def finalize(self):
        if self._result is not None:
            return self._result
        # Adopt valid responses, decide the qualified set.
        responses: Dict[int, Dict[int, list]] = {}
        for round_messages in self.history:
            for message in round_messages:
                if message.kind != "response":
                    continue
                payload = message.payload
                responses.setdefault(message.sender, {})[
                    payload["complainer"]] = [
                        tuple(int(x) for x in triple)
                        for triple in payload["shares"]]
        qualified = []
        for dealer in range(1, self.params.n + 1):
            if dealer not in self.received_commitments:
                continue
            complainers = self.complaints_against.get(dealer, set())
            if len(complainers) > self.params.t:
                continue
            ok = True
            for complainer in complainers:
                published = responses.get(dealer, {}).get(complainer)
                if published is None or not self._published_ok(
                        dealer, complainer, published):
                    ok = False
                    break
                if complainer == self.index:
                    self.received_shares[dealer] = published
            if ok:
                qualified.append(dealer)
        order = self.group.order
        triples = tuple(
            (
                sum(self.received_shares[j][k][0] for j in qualified) % order,
                sum(self.received_shares[j][k][1] for j in qualified) % order,
                sum(self.received_shares[j][k][2] for j in qualified) % order,
            )
            for k in range(DIM))
        g_ks = []
        h_ks = []
        for k in range(DIM):
            v = w = None
            for j in qualified:
                v_0, w_0 = self.received_commitments[j][k][0]
                v = v_0 if v is None else v * v_0
                w = w_0 if w is None else w * w_0
            g_ks.append(v)
            h_ks.append(w)
        public_key = DLINPublicKey(
            params=self.params, g_ks=tuple(g_ks), h_ks=tuple(h_ks))
        share = DLINPrivateKeyShare(index=self.index, triples=triples)
        verification_keys = {}
        for j in range(1, self.params.n + 1):
            u_ks = []
            z_ks = []
            for k in range(DIM):
                prod_v = prod_w = None
                for dealer in qualified:
                    power = 1
                    acc_v = acc_w = None
                    for v_l, w_l in self.received_commitments[dealer][k]:
                        term_v = v_l ** power
                        term_w = w_l ** power
                        acc_v = term_v if acc_v is None else acc_v * term_v
                        acc_w = term_w if acc_w is None else acc_w * term_w
                        power = power * j % order
                    prod_v = acc_v if prod_v is None else prod_v * acc_v
                    prod_w = acc_w if prod_w is None else prod_w * acc_w
                u_ks.append(prod_v)
                z_ks.append(prod_w)
            verification_keys[j] = DLINVerificationKey(
                index=j, u_ks=tuple(u_ks), z_ks=tuple(z_ks))
        self._result = (public_key, share, verification_keys,
                        sorted(qualified))
        return self._result

    def _published_ok(self, dealer: int, complainer: int,
                      published: list) -> bool:
        p = self.params
        commitments = self.received_commitments[dealer]
        for k in range(DIM):
            a, b, c = published[k]
            expected_v = (p.g_z ** a) * (p.g_r ** b)
            expected_w = (p.h_z ** a) * (p.h_u ** c)
            prod_v = prod_w = None
            power = 1
            for v_l, w_l in commitments[k]:
                term_v = v_l ** power
                term_w = w_l ** power
                prod_v = term_v if prod_v is None else prod_v * term_v
                prod_w = term_w if prod_w is None else prod_w * term_w
                power = power * complainer % self.group.order
            if expected_v != prod_v or expected_w != prod_w:
                return False
        return True


def run_dlin_dkg(params: DLINParams, adversary=None, rng=None):
    """Run the Appendix F Dist-Keygen; returns (results, network)."""
    players = {
        i: DLINDKGPlayer(i, params, rng=rng)
        for i in range(1, params.n + 1)
    }
    network = SyncNetwork(players, adversary=adversary)
    results = network.run(3)
    honest = list(results.values())
    if honest:
        reference_pk = honest[0][0]
        for result in honest[1:]:
            if result[0].to_bytes() != reference_pk.to_bytes():
                raise ProtocolError("honest players disagree on the PK")
    return results, network
