"""The paper's constructions.

* :mod:`repro.core.scheme` — the main non-interactive adaptively-secure
  threshold signature (Section 3), built on the DP-based one-time LHSPS.
* :mod:`repro.core.dlin_scheme` — the DLIN-based variant (Appendix F).
* :mod:`repro.core.generic_rom` — any one-time LHSPS + random oracle =>
  full signature scheme under K-linear (Appendix D.1).
* :mod:`repro.core.standard_model` — the Groth-Sahai based standard-model
  scheme (Section 4).
* :mod:`repro.core.generic_standard` — generic standard-model construction
  over a symmetric pairing (Appendix D.2).
* :mod:`repro.core.aggregation` — the aggregation-enabled variant
  (Appendix G).
* :mod:`repro.core.proactive` — proactive share refresh (Section 3.3).
"""

from repro.core.keys import (
    ThresholdParams, PublicKey, PrivateKeyShare, VerificationKey,
    PartialSignature, Signature,
)
from repro.core.scheme import LJYThresholdScheme
from repro.core.proactive import ProactiveSigningService

__all__ = [
    "ThresholdParams", "PublicKey", "PrivateKeyShare", "VerificationKey",
    "PartialSignature", "Signature", "LJYThresholdScheme",
    "ProactiveSigningService",
]
