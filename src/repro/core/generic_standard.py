"""Generic standard-model signatures from any one-time LHSPS (App. D.2).

The DLIN-based analogue of the Section 4 construction: a signature is a
Groth-Sahai **NIZK** proof of knowledge of a one-time LHSPS on the fixed
one-dimensional vector ``g``, over *symmetric* bilinear groups.  DLIN
commitments live in G^3 under a CRS ``(g1, g2, f_M)`` with

    g1 = (g1, 1, g),  g2 = (1, g2, g),  f_M = f_0 * prod f_i^{M[i]}

and a commitment to X is ``C = (1, 1, X) * g1^{nu1} * g2^{nu2} *
f_M^{nu3}``.  Proving the LHSPS verification equations requires NIZK (not
just NIWI), which Appendix D.2 achieves by committing to auxiliary
variables ``Theta_j = G_hat_j`` and proving the pair of equations (8)-(9);
here we implement the equation-(8) part for committed signature components
with linear proofs of 3 group elements per equation, which exactly
reproduces the verification shape of the appendix.

No BN curve provides a symmetric pairing, so this construction runs on
the ``toy-symmetric`` backend only (a Type-1 pairing exists on
supersingular curves; the substitution is documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.gs.crs import message_to_bits
from repro.lhsps.template import OneTimeLHSPS
from repro.math.rng import random_scalar

GVector3 = Tuple[GroupElement, GroupElement, GroupElement]


def _vec_mul(a: GVector3, b: GVector3) -> GVector3:
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


def _vec_pow(a: GVector3, k: int) -> GVector3:
    return (a[0] ** k, a[1] ** k, a[2] ** k)


@dataclass(frozen=True)
class D2Params:
    """Symmetric-pairing parameters with the DLIN Groth-Sahai vectors."""

    group: BilinearGroup
    g: GroupElement
    g1: GVector3
    g2: GVector3
    f_is: Tuple[GVector3, ...]
    bit_length: int

    @classmethod
    def generate(cls, group: BilinearGroup, bit_length: int = 64,
                 label: str = "LJY14:d2") -> "D2Params":
        if not group.symmetric:
            raise ParameterError(
                "Appendix D.2 needs a symmetric (Type-1) pairing")
        g = group.derive_g1(f"{label}:g")
        one = group.g1_identity()
        g1_vec = (group.derive_g1(f"{label}:g1"), one, g)
        g2_vec = (one, group.derive_g1(f"{label}:g2"), g)
        f_is = tuple(
            (group.derive_g1(f"{label}:f{i}:0"),
             group.derive_g1(f"{label}:f{i}:1"),
             group.derive_g1(f"{label}:f{i}:2"))
            for i in range(bit_length + 1))
        return cls(group=group, g=g, g1=g1_vec, g2=g2_vec, f_is=f_is,
                   bit_length=bit_length)

    def crs_for_message(self, message: bytes) -> GVector3:
        bits = message_to_bits(message, self.bit_length)
        vec = self.f_is[0]
        for i, bit in enumerate(bits, start=1):
            if bit:
                vec = _vec_mul(vec, self.f_is[i])
        return vec


@dataclass(frozen=True)
class D2Signature:
    """Commitments to the LHSPS components plus one proof per equation."""

    commitments: Tuple[GVector3, ...]          # C_{Z,mu}
    proofs: Tuple[Tuple[GroupElement, GroupElement, GroupElement], ...]

    def to_bytes(self) -> bytes:
        out = b""
        for commitment in self.commitments:
            out += b"".join(e.to_bytes() for e in commitment)
        for proof in self.proofs:
            out += b"".join(e.to_bytes() for e in proof)
        return out

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


class GenericStandardModelSignature:
    """The Appendix D.2 wrapper: LHSPS on the vector (g,) + GS NIZK."""

    def __init__(self, lhsps: OneTimeLHSPS, params: D2Params):
        if lhsps.dimension != 1:
            raise ParameterError("the LHSPS must sign 1-dimensional vectors")
        if lhsps.group is not params.group:
            raise ParameterError("LHSPS and params must share the group")
        self.lhsps = lhsps
        self.params = params
        self.group = params.group

    def keygen(self, rng=None):
        return self.lhsps.keygen(rng)

    # -- signing ------------------------------------------------------------
    def sign(self, sk, message: bytes, rng=None) -> D2Signature:
        order = self.group.order
        components = self.lhsps.sign(sk, [self.params.g]).components
        f_m = self.params.crs_for_message(message)
        commitments: List[GVector3] = []
        randomness: List[Tuple[int, int, int]] = []
        one = self.group.g1_identity()
        for z_mu in components:
            nu = (random_scalar(order, rng), random_scalar(order, rng),
                  random_scalar(order, rng))
            commitment = _vec_mul(
                _vec_mul((one, one, z_mu), _vec_pow(self.params.g1, nu[0])),
                _vec_mul(_vec_pow(self.params.g2, nu[1]),
                         _vec_pow(f_m, nu[2])))
            commitments.append(commitment)
            randomness.append(nu)
        # One linear proof per verification equation: the constants are
        # the pk elements F_{j,mu} the committed Z_mu pair against.
        proofs = []
        pk_constants = self._equation_constants()
        for constants in pk_constants:
            pi = []
            for slot in range(3):
                acc = None
                for f_j_mu, nu in zip(constants, randomness):
                    term = f_j_mu ** (-nu[slot])
                    acc = term if acc is None else acc * term
                pi.append(acc)
            proofs.append(tuple(pi))
        return D2Signature(
            commitments=tuple(commitments), proofs=tuple(proofs))

    def _equation_constants(self):
        """Per equation j, the constants each Z_mu pairs against."""
        # The template's verification is, per equation j:
        #   1 = prod_mu e(Z_mu, F_hat_{j,mu}) * e(g, G_hat_j)
        # For the DP scheme (m = 1): F = (g_z, g_r), G = g_1.
        # For the SDP scheme (m = 2): two equations.
        pk_probe = getattr(self, "_pk_probe", None)
        if pk_probe is None:
            raise ParameterError("call verify/keygen binding first")
        return pk_probe

    def _bind_pk(self, pk):
        """Extract the template constants from a concrete public key."""
        from repro.lhsps.onetime import DPPublicKey
        from repro.lhsps.sdp_onetime import SDPPublicKey
        if isinstance(pk, DPPublicKey):
            self._pk_probe = [(pk.g_z, pk.g_r)]
            self._pk_targets = [pk.g_ks[0]]
            self._component_count = 2
        elif isinstance(pk, SDPPublicKey):
            self._pk_probe = [
                (pk.g_z, pk.g_r, self.group.g1_identity()),
                (pk.h_z, self.group.g1_identity(), pk.h_u),
            ]
            self._pk_targets = [pk.g_ks[0], pk.h_ks[0]]
            self._component_count = 3
        else:
            raise ParameterError(f"unsupported LHSPS public key {type(pk)}")

    def sign_with_pk(self, sk, pk, message: bytes, rng=None) -> D2Signature:
        """Sign with the constants bound to the matching public key."""
        self._bind_pk(pk)
        return self.sign(sk, message, rng)

    # -- verification ----------------------------------------------------------
    def verify(self, pk, message: bytes, signature: D2Signature) -> bool:
        self._bind_pk(pk)
        if len(signature.commitments) != self._component_count:
            return False
        if len(signature.proofs) != len(self._pk_probe):
            return False
        f_m = self.params.crs_for_message(message)
        basis = (self.params.g1, self.params.g2, f_m)
        for constants, target, proof in zip(
                self._pk_probe, self._pk_targets, signature.proofs):
            # Three coordinate equations over the G^3 commitments.
            for coord in range(3):
                pairs = []
                for commitment, f_j_mu in zip(signature.commitments,
                                              constants):
                    pairs.append((commitment[coord], f_j_mu))
                for vec, pi in zip(basis, proof):
                    pairs.append((vec[coord], pi))
                if coord == 2:
                    pairs.append((self.params.g, target))
                if not self.group.pairing_product_is_one(pairs):
                    return False
        return True
