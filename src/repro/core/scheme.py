"""The main threshold signature scheme (Section 3 of the paper).

The construction hashes a message to a vector ``(H_1, H_2)`` in G^2 and
signs it with the DP-based one-time LHSPS of Section 2.3.  Because that
LHSPS is deterministic and key homomorphic, each server can produce its
partial signature without talking to anyone (Share-Sign), and t+1 partial
signatures interpolate — "Lagrange in the exponent" — into the unique full
signature (Combine).

This module implements the five algorithms of the threshold-signature
syntax (Section 2.1): the interactive ``Dist-Keygen`` lives in
:mod:`repro.dkg.pedersen_dkg`; here we provide the algorithms plus a
trusted-dealer keygen used by tests and by centralized callers.

All equations are checked as single products of pairings, so verification
costs one multi-pairing of four pairs — the paper's "product of four
pairings" (Section 3.1).
"""

from __future__ import annotations

from typing import (
    Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)

from repro.core.keys import (
    KeygenOutput, PartialSignature, PrivateKeyShare, PublicKey, Signature,
    ThresholdParams, VerificationKey,
)
from repro.errors import CombineError, ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.lagrange import lagrange_at_zero, lagrange_coefficients
from repro.math.polynomial import Polynomial
from repro.math.rng import random_scalar


class LJYThresholdScheme:
    """Libert-Joye-Yung non-interactive threshold signatures (Section 3)."""

    def __init__(self, params: ThresholdParams):
        self.params = params
        self.group = params.group

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def dealer_keygen(self, rng=None) -> KeygenOutput:
        """Centralized key generation (for tests and non-distributed use).

        Samples the four degree-t polynomials ``A_1, B_1, A_2, B_2`` a
        single honest dealer would use; the distributed protocol in
        :mod:`repro.dkg.pedersen_dkg` produces identically-shaped output.
        """
        order = self.group.order
        t, n = self.params.t, self.params.n
        polys = {
            (k, name): Polynomial.random(t, order, rng=rng)
            for k in (1, 2) for name in ("A", "B")
        }
        shares = {
            i: PrivateKeyShare(
                index=i,
                a_1=polys[(1, "A")](i), b_1=polys[(1, "B")](i),
                a_2=polys[(2, "A")](i), b_2=polys[(2, "B")](i),
            )
            for i in range(1, n + 1)
        }
        public_key = self.public_key_from_master(
            a_10=polys[(1, "A")].constant_term,
            b_10=polys[(1, "B")].constant_term,
            a_20=polys[(2, "A")].constant_term,
            b_20=polys[(2, "B")].constant_term,
        )
        verification_keys = {
            i: self.verification_key_for(shares[i]) for i in shares
        }
        return public_key, shares, verification_keys

    def public_key_from_master(self, a_10: int, b_10: int, a_20: int,
                               b_20: int) -> PublicKey:
        """``g_hat_k = g_z^{A_k(0)} g_r^{B_k(0)}`` — two 2-base multi-exps."""
        p = self.params
        bases = [p.g_z, p.g_r]
        return PublicKey(
            params=p,
            g_1=self.group.multi_exp(bases, [a_10, b_10]),
            g_2=self.group.multi_exp(bases, [a_20, b_20]),
        )

    def verification_key_for(self, share: PrivateKeyShare) -> VerificationKey:
        """``VK_i = (g_z^{A_1(i)} g_r^{B_1(i)}, g_z^{A_2(i)} g_r^{B_2(i)})``.

        In the distributed protocol anyone derives VK_i from the broadcast
        commitments; given the share itself this direct form is equivalent.
        """
        p = self.params
        bases = [p.g_z, p.g_r]
        return VerificationKey(
            index=share.index,
            v_1=self.group.multi_exp(bases, [share.a_1, share.b_1]),
            v_2=self.group.multi_exp(bases, [share.a_2, share.b_2]),
        )

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def share_sign(self, share: PrivateKeyShare,
                   message: bytes) -> PartialSignature:
        """Non-interactive partial signing (Share-Sign).

        ``z_i = H_1^{-A_1(i)} H_2^{-A_2(i)}``,
        ``r_i = H_1^{-B_1(i)} H_2^{-B_2(i)}``.
        """
        h_1, h_2 = self.params.hash_message(message)
        bases = [h_1, h_2]
        z = self.group.multi_exp(bases, [-share.a_1, -share.a_2])
        r = self.group.multi_exp(bases, [-share.b_1, -share.b_2])
        return PartialSignature(index=share.index, z=z, r=r)

    def share_verify(self, public_key: PublicKey,
                     verification_key: VerificationKey, message: bytes,
                     partial: PartialSignature) -> bool:
        """Check ``e(z_i, g_z) e(r_i, g_r) e(H_1, V_1i) e(H_2, V_2i) = 1``."""
        if partial.index != verification_key.index:
            return False
        h_1, h_2 = self.params.hash_message(message)
        p = self.params
        return self.group.pairing_product_is_one([
            (partial.z, p.g_z),
            (partial.r, p.g_r),
            (h_1, verification_key.v_1),
            (h_2, verification_key.v_2),
        ])

    def batch_share_verify(self, public_key: PublicKey,
                           verification_keys: Mapping[int, VerificationKey],
                           message: bytes,
                           partials: Sequence[PartialSignature],
                           rng=None) -> bool:
        """Check many partial signatures with **one** multi-pairing.

        Raises each partial's verification equation to a random 64-bit
        exponent and multiplies them together; by bilinearity the product
        collapses to the same four-pair shape as a single Share-Verify,
        with the four aggregated arguments computed as multi-scalar
        multiplications.  A batch of forgeries passes with probability at
        most 2^-64 over the verifier's coins (the standard small-exponent
        batching argument); robust Combine falls back to per-share checks
        whenever the batch fails, so a failing batch costs one extra
        multi-pairing, never a wrong outcome.
        """
        partials = list(partials)
        if not partials:
            return True
        p = self.params
        group = self.group
        for partial in partials:
            vk = verification_keys.get(partial.index)
            if vk is None or vk.index != partial.index:
                return False
        if len(partials) == 1:
            return self.share_verify(
                public_key, verification_keys[partials[0].index], message,
                partials[0])
        h_1, h_2 = p.hash_message(message)
        # Uniform over [1, 2^64] — 2^64 nonzero values, matching the
        # stated soundness bound.
        exponents = [
            random_scalar(1 << 64, rng) + 1 for _ in partials
        ]
        z_agg = group.multi_exp([pt.z for pt in partials], exponents)
        r_agg = group.multi_exp([pt.r for pt in partials], exponents)
        v_1_agg = group.multi_exp(
            [verification_keys[pt.index].v_1 for pt in partials], exponents)
        v_2_agg = group.multi_exp(
            [verification_keys[pt.index].v_2 for pt in partials], exponents)
        return group.pairing_product_is_one([
            (z_agg, p.g_z),
            (r_agg, p.g_r),
            (h_1, v_1_agg),
            (h_2, v_2_agg),
        ])

    def batch_share_verify_window(
            self, public_key: PublicKey,
            verification_keys: Mapping[int, VerificationKey],
            items: Sequence[Tuple[bytes, PartialSignature]],
            rng=None) -> bool:
        """Check partial signatures across **many messages** with one
        multi-pairing — the Share-Verify twin of :meth:`batch_verify`.

        :meth:`batch_share_verify` already collapses one message's
        partials into four pairs, but a robust combiner faced with a
        poisoned *window* holds partials for many messages at once.
        Each equation is raised to a fresh random 64-bit exponent; by
        bilinearity the product groups by pairing argument into
        ``2 + 2 * distinct_signers`` pairs — ``(z_agg, g_z)``,
        ``(r_agg, g_r)`` and one ``(H_1-agg_i, V_1i)``/``(H_2-agg_i,
        V_2i)`` pair per contributing signer — so every G_hat argument
        stays a *fixed, Miller-loop-prepared* point and the per-item
        cost is a few small-exponent MSM terms instead of a four-pair
        pairing product.

        A batch containing any forged partial passes with probability
        at most 2^-64 over the verifier's coins (standard
        small-exponent batching).  Returns False when any item's signer
        has no verification key; True for an empty batch.  Use
        :meth:`locate_invalid_partials` to identify offenders when a
        batch fails.
        """
        items = list(items)
        if not items:
            return True
        for _, partial in items:
            vk = verification_keys.get(partial.index)
            if vk is None or vk.index != partial.index:
                return False
        if len(items) == 1:
            message, partial = items[0]
            return self.share_verify(
                public_key, verification_keys[partial.index], message,
                partial)
        p = self.params
        group = self.group
        # Uniform over [1, 2^64] — 2^64 nonzero values, matching the
        # stated soundness bound.
        exponents = [random_scalar(1 << 64, rng) + 1 for _ in items]
        z_points = [partial.z for _, partial in items]
        r_points = [partial.r for _, partial in items]
        group.batch_normalize(z_points + r_points)
        z_agg = group.multi_exp(z_points, exponents)
        r_agg = group.multi_exp(r_points, exponents)
        # Group the hash terms by signer: V_1i/V_2i are the only
        # non-shared G_hat arguments, so one MSM pair per *distinct*
        # signer is the finest the product collapses to.
        hashes: Dict[bytes, Tuple[GroupElement, GroupElement]] = {}
        buckets: Dict[int, Tuple[list, list, list]] = {}
        for exponent, (message, partial) in zip(exponents, items):
            pair = hashes.get(message)
            if pair is None:
                pair = hashes[message] = p.hash_message(message)
            h_1s, h_2s, exps = buckets.setdefault(
                partial.index, ([], [], []))
            h_1s.append(pair[0])
            h_2s.append(pair[1])
            exps.append(exponent)
        pairs = [(z_agg, p.g_z), (r_agg, p.g_r)]
        for index in sorted(buckets):
            h_1s, h_2s, exps = buckets[index]
            vk = verification_keys[index]
            pairs.append((group.multi_exp(h_1s, exps), vk.v_1))
            pairs.append((group.multi_exp(h_2s, exps), vk.v_2))
        return group.pairing_product_is_one(pairs)

    def locate_invalid_partials(
            self, public_key: PublicKey,
            verification_keys: Mapping[int, VerificationKey],
            items: Sequence[Tuple[bytes, PartialSignature]],
            rng=None) -> List[int]:
        """Positions (into ``items``) of invalid ``(message, partial)``
        pairs, localized by bisection over
        :meth:`batch_share_verify_window` — so few forgeries in a big
        flattened window cost ~2*log2(k) sub-batch multi-pairings
        instead of k Share-Verify calls.  An item whose signer has no
        verification key is reported invalid.  Returns [] when the
        whole batch verifies.
        """
        items = list(items)

        def bisect(lo: int, hi: int) -> List[int]:
            if self.batch_share_verify_window(
                    public_key, verification_keys, items[lo:hi], rng=rng):
                return []
            if hi - lo == 1:
                return [lo]
            mid = (lo + hi) // 2
            return bisect(lo, mid) + bisect(mid, hi)

        if not items:
            return []
        return bisect(0, len(items))

    # ------------------------------------------------------------------
    # Combining and verification
    # ------------------------------------------------------------------
    def combine(self, public_key: PublicKey,
                verification_keys: Mapping[int, VerificationKey],
                message: bytes,
                partials: Iterable[PartialSignature],
                verify_shares: bool = True,
                rng=None) -> Signature:
        """Interpolate t+1 valid partial signatures into a full signature.

        With ``verify_shares`` (the robust mode) invalid contributions are
        filtered out via Share-Verify, so the combiner succeeds whenever at
        least t+1 honest partial signatures are present — robustness against
        up to t malicious servers.  Raises :class:`CombineError` otherwise.

        The robust path first batch-verifies the leading t+1 candidates
        (one multi-pairing via :meth:`batch_share_verify`) and only falls
        back to per-share checks when the batch fails, so the all-honest
        case costs one multi-pairing instead of t+1.  The final "Lagrange
        in the exponent" is two (t+1)-term multi-scalar multiplications.
        """
        t = self.params.t
        if verify_shares:
            # Keep every occurrence: a forged partial must not shadow a
            # later honest one for the same index.
            candidates = [
                partial for partial in partials
                if verification_keys.get(partial.index) is not None
            ]
            usable: Dict[int, PartialSignature] = {}
            leading: Dict[int, PartialSignature] = {}
            for partial in candidates:
                if partial.index not in leading:
                    leading[partial.index] = partial
                    if len(leading) == t + 1:
                        break
            if len(leading) == t + 1 and self.batch_share_verify(
                    public_key, verification_keys, message,
                    list(leading.values()), rng=rng):
                usable = leading
            else:
                for partial in candidates:
                    if partial.index in usable:
                        continue
                    if self.share_verify(
                            public_key, verification_keys[partial.index],
                            message, partial):
                        usable[partial.index] = partial
                        if len(usable) == t + 1:
                            break
        else:
            usable = {}
            for partial in partials:
                if partial.index in usable:
                    continue
                usable[partial.index] = partial
                if len(usable) == t + 1:
                    break
        if len(usable) < t + 1:
            raise CombineError(
                f"need {t + 1} valid partial signatures, got {len(usable)}")
        # Lagrange-at-zero coefficient sets are memoized per signer set —
        # a stable quorum pays the denominator inversions once — and the
        # partial-signature points are batch-normalized with one shared
        # field inversion across both MSMs (their own table passes then
        # skip the already-affine entries, and every later affine()
        # consumer of the same points gets normalization for free).
        coefficients = lagrange_at_zero(
            tuple(sorted(usable)), self.group.order)
        weights = [coefficients[index] for index in usable]
        z_points = [partial.z for partial in usable.values()]
        r_points = [partial.r for partial in usable.values()]
        self.group.batch_normalize(z_points + r_points)
        z = self.group.multi_exp(z_points, weights)
        r = self.group.multi_exp(r_points, weights)
        return Signature(z=z, r=r)

    def verify(self, public_key: PublicKey, message: bytes,
               signature: Signature) -> bool:
        """``e(z, g_z) e(r, g_r) e(H_1, g_1) e(H_2, g_2) = 1`` — one
        multi-pairing of four pairs."""
        h_1, h_2 = self.params.hash_message(message)
        p = self.params
        return self.group.pairing_product_is_one([
            (signature.z, p.g_z),
            (signature.r, p.g_r),
            (h_1, public_key.g_1),
            (h_2, public_key.g_2),
        ])

    def batch_verify(self, public_key: PublicKey,
                     messages: Sequence[bytes],
                     signatures: Sequence[Signature],
                     rng=None) -> bool:
        """Verify signatures on many **distinct messages** with one
        multi-pairing — the server-side amortization.

        Each verification equation is raised to a fresh random 64-bit
        exponent and the product collapses, by bilinearity and because
        all four G_hat arguments (``g_z``, ``g_r``, ``g_1``, ``g_2``) are
        shared across messages, to the same four-pair shape as a single
        Verify — the four aggregated G arguments being k-term MSMs over
        *small* exponents.  Amortized per-message cost is therefore a few
        64-bit MSM terms instead of a full four-pair pairing product.

        A batch containing any forgery passes with probability at most
        2^-64 over the verifier's coins (standard small-exponent
        batching).  Returns True for an empty batch.  Use
        :meth:`locate_invalid` to identify offenders when a batch fails.
        """
        if len(messages) != len(signatures):
            raise ParameterError(
                "need exactly one signature per message")
        if not messages:
            return True
        if len(messages) == 1:
            return self.verify(public_key, messages[0], signatures[0])
        p = self.params
        group = self.group
        # Uniform over [1, 2^64] — 2^64 nonzero values, matching the
        # stated soundness bound.
        exponents = [random_scalar(1 << 64, rng) + 1 for _ in messages]
        hashes = [p.hash_message(message) for message in messages]
        z_points = [signature.z for signature in signatures]
        r_points = [signature.r for signature in signatures]
        h_1s = [pair[0] for pair in hashes]
        h_2s = [pair[1] for pair in hashes]
        group.batch_normalize(z_points + r_points)
        return group.pairing_product_is_one([
            (group.multi_exp(z_points, exponents), p.g_z),
            (group.multi_exp(r_points, exponents), p.g_r),
            (group.multi_exp(h_1s, exponents), public_key.g_1),
            (group.multi_exp(h_2s, exponents), public_key.g_2),
        ])

    def locate_invalid(self, public_key: PublicKey,
                       messages: Sequence[bytes],
                       signatures: Sequence[Signature],
                       rng=None) -> List[int]:
        """Indices of invalid signatures, localized by bisection.

        Splits a failing batch in half recursively, re-running
        :meth:`batch_verify` on each half, so a single forgery in a batch
        of k costs ~2*log2(k) sub-batch checks instead of k individual
        verifications.  Returns [] when the whole batch verifies.
        """
        if len(messages) != len(signatures):
            raise ParameterError(
                "need exactly one signature per message")

        def bisect(lo: int, hi: int) -> List[int]:
            if self.batch_verify(public_key, messages[lo:hi],
                                 signatures[lo:hi], rng=rng):
                return []
            if hi - lo == 1:
                return [lo]
            mid = (lo + hi) // 2
            return bisect(lo, mid) + bisect(mid, hi)

        if not messages:
            return []
        return bisect(0, len(messages))

    # ------------------------------------------------------------------
    # Window-sized entry points (the serving-layer amortization)
    # ------------------------------------------------------------------
    def combine_window(self, public_key: PublicKey,
                       verification_keys: Mapping[int, VerificationKey],
                       windows: Sequence[
                           Tuple[bytes, Sequence[PartialSignature]]],
                       rng=None) -> Tuple[List[Optional[Signature]],
                                          List[int]]:
        """Combine one batch window of ``(message, partials)`` requests.

        Optimistically combines every request without share verification,
        then checks the whole window with **one** cross-message
        :meth:`batch_verify` — so a window of k honest requests costs k
        cheap Lagrange MSMs plus a single multi-pairing instead of k
        robust Combines.  When the window check fails,
        :meth:`locate_invalid` bisects to the poisoned requests, their
        partial signatures are re-checked together under ONE
        cross-message :meth:`batch_share_verify_window` (bisecting to
        the forged shares via :meth:`locate_invalid_partials`), and
        each flagged request recombines from its surviving shares.

        Returns ``(signatures, flagged)`` where ``flagged`` lists the
        window positions that needed the robust fallback.  A flagged
        position whose partials do not contain t+1 valid shares gets
        ``None`` in the signature list — the caller decides whether to
        retry with more partial signatures (the service layer does, with
        the full signer set).
        """
        windows = [(message, list(partials))
                   for message, partials in windows]
        signatures: List[Optional[Signature]] = []
        broken: List[int] = []
        for position, (message, partials) in enumerate(windows):
            try:
                signatures.append(self.combine(
                    public_key, verification_keys, message, partials,
                    verify_shares=False))
            except CombineError:
                # Fewer than t+1 distinct partials even before any
                # verification: flag the position, don't abort the
                # window's other requests.
                signatures.append(None)
                broken.append(position)
        combined = [position for position, signature
                    in enumerate(signatures) if signature is not None]
        if self.batch_verify(
                public_key,
                [windows[position][0] for position in combined],
                [signatures[position] for position in combined],
                rng=rng):
            invalid: List[int] = []
        else:
            invalid = [
                combined[offset] for offset in self.locate_invalid(
                    public_key,
                    [windows[position][0] for position in combined],
                    [signatures[position] for position in combined],
                    rng=rng)
            ]
        if not invalid and not broken:
            return signatures, []
        # Only `invalid` positions get the robust retry: a `broken`
        # position lacks t+1 distinct indices outright, so per-share
        # filtering (which only shrinks the usable set) cannot save it —
        # it stays None for the caller's own fallback.
        #
        # The retry itself is batched: every flagged position's partials
        # are flattened into ONE cross-message
        # :meth:`batch_share_verify_window` (with
        # :meth:`locate_invalid_partials` bisection pinpointing the
        # forged shares), instead of each position paying its own
        # per-share Share-Verify loop.  The surviving partials are
        # verified — each passed inside a passing batch — so the
        # recombine can skip share verification.
        items: List[Tuple[bytes, PartialSignature]] = []
        item_positions: List[int] = []
        for position in invalid:
            message, partials = windows[position]
            for partial in partials:
                if verification_keys.get(partial.index) is not None:
                    items.append((message, partial))
                    item_positions.append(position)
        bad = set(self.locate_invalid_partials(
            public_key, verification_keys, items, rng=rng))
        good_by_position: Dict[int, List[PartialSignature]] = {
            position: [] for position in invalid}
        for offset, (_, partial) in enumerate(items):
            if offset not in bad:
                good_by_position[item_positions[offset]].append(partial)
        for position in invalid:
            message, _ = windows[position]
            try:
                signatures[position] = self.combine(
                    public_key, verification_keys, message,
                    good_by_position[position], verify_shares=False)
            except CombineError:
                signatures[position] = None
        return signatures, sorted(broken + invalid)

    def verify_window(self, public_key: PublicKey,
                      messages: Sequence[bytes],
                      signatures: Sequence[Signature],
                      rng=None) -> List[bool]:
        """Per-request verdicts for one batch window of verify requests.

        One :meth:`batch_verify` multi-pairing in the all-valid case;
        :meth:`locate_invalid` bisection otherwise, so a window with few
        forgeries still amortizes.
        """
        if len(messages) != len(signatures):
            raise ParameterError("need exactly one signature per message")
        invalid = set(self.locate_invalid(public_key, messages, signatures,
                                          rng=rng))
        return [index not in invalid for index in range(len(messages))]

    # ------------------------------------------------------------------
    # Centralized signing (used by tests and the security reductions)
    # ------------------------------------------------------------------
    def sign_with_master(self, master: Tuple[int, int, int, int],
                         message: bytes) -> Signature:
        """Sign directly with the master key ``(A_1(0), B_1(0), A_2(0),
        B_2(0))`` — what the combined signature must equal."""
        a_10, b_10, a_20, b_20 = master
        h_1, h_2 = self.params.hash_message(message)
        bases = [h_1, h_2]
        z = self.group.multi_exp(bases, [-a_10, -a_20])
        r = self.group.multi_exp(bases, [-b_10, -b_20])
        return Signature(z=z, r=r)


class ServiceHandle:
    """A facade bundling scheme, keys and quorum policy — the supported
    entry point for applications and for the async signing service.

    Applications kept re-assembling the same four objects (params,
    scheme, key shares, verification keys) and re-deriving quorums by
    hand; the handle owns them and exposes the task-level operations:
    ``sign`` / ``verify`` for one-off calls, ``sign_window`` /
    ``verify_window`` for the amortized batch paths the service layer
    dispatches, and ``partials_for`` for callers that split signing from
    combining (a shard worker, a distributed combiner).

    The one-off paths (``sign``/``verify``/``partials_for``) work with
    any scheme following the threshold-signature syntax — the
    key-prefixed :class:`~repro.core.aggregation.LJYAggregateScheme`
    (whose ``share_sign`` takes the public key first) is adapted
    automatically.  The window-sized batch paths require a scheme with
    ``combine_window``/``verify_window`` (i.e.
    :class:`LJYThresholdScheme`) and raise :class:`TypeError` otherwise.
    """

    def __init__(self, scheme, public_key, shares: Mapping[int, "PrivateKeyShare"],
                 verification_keys: Mapping[int, VerificationKey],
                 epoch: int = 0):
        self.scheme = scheme
        self.public_key = public_key
        self.shares = dict(shares)
        self.verification_keys = dict(verification_keys)
        #: Key-lifecycle generation.  Every refresh/reshare/recovery
        #: produces a *new* handle with ``epoch + 1`` and the same
        #: public key; the service layer uses the epoch to fence worker
        #: contexts and WAL records against stale key material.
        self.epoch = epoch
        self._signer_ring = sorted(self.shares)
        # Aggregate-scheme adaptation: its hash is key-prefixed, so
        # share_sign takes the public key as leading argument (and its
        # combine predates the batching coins).
        import inspect
        parameters = inspect.signature(scheme.share_sign).parameters
        self._key_prefixed = len(parameters) == 3
        self._combine_accepts_rng = (
            "rng" in inspect.signature(scheme.combine).parameters)

    # -- construction -------------------------------------------------------
    @classmethod
    def dealer(cls, group: BilinearGroup, t: int, n: int,
               rng=None, label: str = "LJY14") -> "ServiceHandle":
        """Trusted-dealer setup: params + scheme + keys in one call."""
        params = ThresholdParams.generate(group, t, n, label=label)
        scheme = LJYThresholdScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        return cls(scheme, pk, shares, vks)

    @classmethod
    def from_dkg(cls, group: BilinearGroup, t: int, n: int, rng=None,
                 adversary=None, label: str = "LJY14"):
        """Fully distributed setup via Pedersen's one-round DKG.

        Returns ``(handle, network)`` — the handle holds every honest
        player's share (this is a local simulation; a deployment keeps
        each share on its own server), the network carries the
        communication metrics.
        """
        from repro.dkg import dkg_result_to_keys, run_pedersen_dkg
        params = ThresholdParams.generate(group, t, n, label=label)
        scheme = LJYThresholdScheme(params)
        results, network = run_pedersen_dkg(
            group, params.g_z, params.g_r, t, n,
            adversary=adversary, rng=rng)
        first = next(iter(results))
        public_key, _, verification_keys = dkg_result_to_keys(
            scheme, results[first])
        shares = {
            index: dkg_result_to_keys(scheme, result)[1]
            for index, result in results.items()
        }
        return cls(scheme, public_key, shares, verification_keys), network

    # -- key lifecycle ------------------------------------------------------
    # Each operation returns a NEW handle at ``epoch + 1`` under the
    # byte-identical public key; the caller (typically
    # ``SigningService.begin_epoch``) swaps it in atomically.  Signatures
    # are unique per message, so a request signed under either handle
    # yields the same bytes — epoch transitions cannot change results,
    # only which shares produce them.

    def refreshed(self, rng=None, adversary=None) -> "ServiceHandle":
        """Proactive refresh (Section 3.3): same committee, re-randomized
        shares, updated VKs, public key unchanged."""
        from repro.dkg.refresh import run_refresh
        params = self.scheme.params
        new_shares, new_vks, _ = run_refresh(
            params.group, params.g_z, params.g_r, params.t, params.n,
            self.shares, self.verification_keys,
            adversary=adversary, rng=rng)
        return ServiceHandle(self.scheme, self.public_key, new_shares,
                             new_vks, epoch=self.epoch + 1)

    def reshared(self, new_t: int, new_indices: Sequence[int],
                 rng=None, adversary=None) -> "ServiceHandle":
        """Reshare to a new (t', n') committee (signer join/leave).

        The reshare transcript is checked against the current public
        key (see :mod:`repro.dkg.reshare`), so the returned handle
        provably signs for the same key.  A changed threshold gets a
        new scheme over the *same* generators and hash domain, keeping
        signatures byte-compatible across the transition.
        """
        from repro.dkg.reshare import run_reshare
        params = self.scheme.params
        new_shares, new_vks, _ = run_reshare(
            params.group, params.g_z, params.g_r, params.t, new_t,
            new_indices, self.shares, self.verification_keys,
            public_key=self.public_key, adversary=adversary, rng=rng)
        scheme = self.scheme
        public_key = self.public_key
        if new_t != params.t or len(new_shares) != params.n:
            new_params = ThresholdParams(
                group=params.group, t=new_t, n=len(new_shares),
                g_z=params.g_z, g_r=params.g_r,
                hash_domain=params.hash_domain)
            scheme = type(self.scheme)(new_params)
            public_key = PublicKey(params=new_params,
                                   g_1=self.public_key.g_1,
                                   g_2=self.public_key.g_2)
        return ServiceHandle(scheme, public_key, new_shares, new_vks,
                             epoch=self.epoch + 1)

    def without_signer(self, index: int) -> "ServiceHandle":
        """Drop a crashed/compromised signer's share (its public VK is
        kept so the share can be recovered later)."""
        if index not in self.shares:
            raise ParameterError(f"no share for signer {index}")
        if len(self.shares) - 1 < self.threshold + 1:
            raise ParameterError(
                "dropping this signer would leave fewer than t+1 shares")
        remaining = {i: s for i, s in self.shares.items() if i != index}
        return ServiceHandle(self.scheme, self.public_key, remaining,
                             self.verification_keys, epoch=self.epoch + 1)

    def with_recovered(self, index: int) -> "ServiceHandle":
        """Herzberg-style share recovery: t+1 helpers interpolate the
        lost share at the victim's index (never at zero), and the victim
        rejoins the signer ring in the next epoch."""
        from repro.dkg.refresh import recover_share
        if index in self.shares:
            raise ParameterError(f"signer {index} already holds a share")
        if index not in self.verification_keys:
            raise ParameterError(
                f"no verification key for signer {index} — recovery "
                "re-derives a share of the *current* sharing only")
        helpers = dict(self.shares)
        recovered = recover_share(self.scheme, index, helpers)
        shares = dict(self.shares)
        shares[index] = recovered
        return ServiceHandle(self.scheme, self.public_key, shares,
                             self.verification_keys, epoch=self.epoch + 1)

    # -- quorum policy ------------------------------------------------------
    @property
    def threshold(self) -> int:
        return self.scheme.params.t

    def quorum(self, rotation: int = 0) -> List[int]:
        """A t+1 signer quorum, rotated so load spreads over all servers."""
        ring = self._signer_ring
        size = self.threshold + 1
        start = rotation % len(ring)
        doubled = ring + ring
        return doubled[start:start + size]

    # -- signing ------------------------------------------------------------
    def _share_sign(self, share, message: bytes) -> PartialSignature:
        if self._key_prefixed:
            return self.scheme.share_sign(self.public_key, share, message)
        return self.scheme.share_sign(share, message)

    def partials_for(self, message: bytes,
                     signers: Optional[Sequence[int]] = None
                     ) -> List[PartialSignature]:
        """Partial signatures from ``signers`` (default: the first quorum)."""
        indices = self.quorum() if signers is None else signers
        return [
            self._share_sign(self.shares[index], message)
            for index in indices
        ]

    def partials_with_faults(self, message: bytes,
                             signers: Sequence[int],
                             fault_injector=None,
                             shard_id: int = 0
                             ) -> List[PartialSignature]:
        """Like :meth:`partials_for`, with every partial run through a
        service-layer fault injector (see :mod:`repro.service.faults`).
        The single producer both the in-process shard workers and the
        process workers use, so injector semantics cannot diverge
        between the two execution tiers.
        """
        produced = []
        for index in signers:
            partial = self._share_sign(self.shares[index], message)
            if fault_injector is not None:
                partial = fault_injector(shard_id, index, message, partial)
            produced.append(partial)
        return produced

    def process_sign_window(self, messages: Sequence[bytes],
                            quorum: Optional[Sequence[int]] = None,
                            fault_injector=None, shard_id: int = 0,
                            rng=None):
        """Serve one batch window of sign requests end to end.

        Produces the quorum's partial signatures per message (running
        ``fault_injector`` over each, when given — see
        :mod:`repro.service.faults`), combines the window through
        :meth:`LJYThresholdScheme.combine_window` (one cross-message
        batch check), and re-runs any request that still lacks a
        signature through a robust combine over the **full** signer
        ring, so a request completes whenever t+1 honest servers exist.

        Returns a :class:`~repro.serialization.SignWindowOutcome` — the
        shard workers of :mod:`repro.service.shards` and the process
        workers of :mod:`repro.service.workers` both dispatch here, so
        in-process and multi-process modes serve the identical contract.
        """
        from repro.serialization import SignWindowOutcome
        if not hasattr(self.scheme, "combine_window"):
            raise TypeError(
                f"{type(self.scheme).__name__} has no window-sized entry "
                "points; use the one-off sign()/verify() paths")
        indices = self.quorum() if quorum is None else list(quorum)
        windows = [
            (message, self.partials_with_faults(
                message, indices, fault_injector=fault_injector,
                shard_id=shard_id))
            for message in messages
        ]
        signatures, flagged = self.scheme.combine_window(
            self.public_key, self.verification_keys, windows, rng=rng)
        failures = []
        fallback_combines = 0
        for position, signature in enumerate(signatures):
            if signature is not None:
                continue
            # The quorum did not contain t+1 valid shares: per-share
            # fallback over the full signer ring (injector still
            # applied — robustness must survive a persistent fault).
            fallback_combines += 1
            try:
                signatures[position] = self.scheme.combine(
                    self.public_key, self.verification_keys,
                    messages[position],
                    self.partials_with_faults(
                        messages[position], self._signer_ring,
                        fault_injector=fault_injector,
                        shard_id=shard_id),
                    verify_shares=True, rng=rng)
            except Exception as exc:
                failures.append((
                    position,
                    f"sign failed even with the full signer set: {exc}"))
        return SignWindowOutcome(
            signatures=tuple(signatures), flagged=tuple(flagged),
            failures=tuple(failures), fallback_combines=fallback_combines)

    def sign(self, message: bytes,
             signers: Optional[Sequence[int]] = None,
             robust: bool = False, rng=None) -> Signature:
        """Share-sign with a quorum and combine into a full signature."""
        partials = self.partials_for(message, signers)
        kwargs = {"rng": rng} if self._combine_accepts_rng else {}
        if not robust:
            kwargs["verify_shares"] = False
        return self.scheme.combine(
            self.public_key, self.verification_keys, message, partials,
            **kwargs)

    def sign_window(self, messages: Sequence[bytes],
                    signers: Optional[Sequence[int]] = None,
                    rng=None) -> List[Signature]:
        """Sign a whole batch window with one cross-message check.

        Uses :meth:`LJYThresholdScheme.combine_window`; a request whose
        quorum contributed a forged partial falls back to a robust
        combine over **all** n shares, so it still completes whenever
        t+1 honest servers exist.
        """
        if not hasattr(self.scheme, "combine_window"):
            raise TypeError(
                f"{type(self.scheme).__name__} has no window-sized entry "
                "points; use the one-off sign()/verify() paths")
        indices = self.quorum() if signers is None else list(signers)
        windows = [
            (message, self.partials_for(message, indices))
            for message in messages
        ]
        signatures, flagged = self.scheme.combine_window(
            self.public_key, self.verification_keys, windows, rng=rng)
        for position in flagged:
            if signatures[position] is None:
                signatures[position] = self.sign(
                    messages[position], signers=self._signer_ring,
                    robust=True, rng=rng)
        return signatures

    # -- verification -------------------------------------------------------
    def verify(self, message: bytes, signature: Signature) -> bool:
        return self.scheme.verify(self.public_key, message, signature)

    def verify_window(self, messages: Sequence[bytes],
                      signatures: Sequence[Signature],
                      rng=None) -> List[bool]:
        if not hasattr(self.scheme, "verify_window"):
            raise TypeError(
                f"{type(self.scheme).__name__} has no window-sized entry "
                "points; use the one-off sign()/verify() paths")
        return self.scheme.verify_window(
            self.public_key, messages, signatures, rng=rng)


def random_master_key(group: BilinearGroup,
                      rng=None) -> Tuple[int, int, int, int]:
    """A uniformly random master key (for centralized/benchmark use)."""
    return tuple(random_scalar(group.order, rng) for _ in range(4))


def reconstruct_master_key(
        shares: Sequence[PrivateKeyShare], order: int,
        t: int) -> Tuple[int, int, int, int]:
    """Recover ``(A_1(0), B_1(0), A_2(0), B_2(0))`` from t+1 shares.

    Exists for tests and for the storage experiment; the protocol never
    reconstructs the master key anywhere.
    """
    if len(shares) < t + 1:
        raise ParameterError("not enough shares to reconstruct")
    subset = list(shares)[: t + 1]
    coefficients = lagrange_coefficients([s.index for s in subset], order)
    totals = [0, 0, 0, 0]
    for share in subset:
        weight = coefficients[share.index]
        totals[0] = (totals[0] + weight * share.a_1) % order
        totals[1] = (totals[1] + weight * share.b_1) % order
        totals[2] = (totals[2] + weight * share.a_2) % order
        totals[3] = (totals[3] + weight * share.b_2) % order
    return tuple(totals)
