"""repro — reproduction of Libert, Joye & Yung (PODC 2014).

*Born and Raised Distributively: Fully Distributed Non-Interactive
Adaptively-Secure Threshold Signatures with Short Shares.*

Public API tour
---------------

>>> from repro import get_group, ThresholdParams, LJYThresholdScheme
>>> group = get_group("toy")          # or "bn254" for the real pairing
>>> params = ThresholdParams.generate(group, t=2, n=5)
>>> scheme = LJYThresholdScheme(params)
>>> pk, shares, vks = scheme.dealer_keygen()
>>> partials = [scheme.share_sign(shares[i], b"msg") for i in (1, 3, 5)]
>>> sig = scheme.combine(pk, vks, b"msg", partials)
>>> scheme.verify(pk, b"msg", sig)
True

For the fully distributed path replace ``dealer_keygen`` with
:func:`repro.dkg.run_pedersen_dkg` /
:func:`repro.dkg.dkg_result_to_keys` — see ``examples/quickstart.py``.

:class:`repro.ServiceHandle` bundles params/scheme/keys behind the
task-level entry points (``sign``/``verify`` plus the window-sized batch
paths), and :mod:`repro.service` serves a handle as a long-lived async
signing service with batch-window amortization — see
``examples/signing_service_demo.py``.
"""

from repro.groups import get_group
from repro.core.keys import (
    PartialSignature, PrivateKeyShare, PublicKey, Signature,
    ThresholdParams, VerificationKey,
)
from repro.core.scheme import LJYThresholdScheme, ServiceHandle
from repro.core.standard_model import LJYStandardModelScheme, SMParams
from repro.core.dlin_scheme import DLINParams, LJYDLINScheme
from repro.core.aggregation import AggThresholdParams, LJYAggregateScheme
from repro.dkg import run_pedersen_dkg, dkg_result_to_keys, run_refresh

__version__ = "1.0.0"

__all__ = [
    "get_group",
    "ThresholdParams", "PublicKey", "PrivateKeyShare", "VerificationKey",
    "PartialSignature", "Signature",
    "LJYThresholdScheme", "ServiceHandle",
    "LJYStandardModelScheme", "SMParams",
    "DLINParams", "LJYDLINScheme",
    "AggThresholdParams", "LJYAggregateScheme",
    "run_pedersen_dkg", "dkg_result_to_keys", "run_refresh",
    "__version__",
]
