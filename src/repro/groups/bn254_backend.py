"""The real BN254 backend: multiplicative wrappers over the curve layer.

``BNG1``/``BNG2`` wrap :class:`~repro.curves.g1.G1Point` and
:class:`~repro.curves.g2.G2Point` (which are additive, as is customary for
elliptic-curve code) in the multiplicative interface the protocol layer
uses.  ``BNGT`` wraps the F_p12 target-group element.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.hash_to_curve import (
    derive_generator_g1, derive_generator_g2, hash_to_g1_vector,
)
from repro.curves.pairing import (
    GTElement, gt_multi_exp, multi_pairing, prepare_g2,
)
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.rng import random_scalar


class BNG1(GroupElement):
    """Element of G (the paper's first source group) on BN254."""

    __slots__ = ("point",)

    def __init__(self, point: G1Point):
        self.point = point

    def op(self, other: "BNG1") -> "BNG1":
        return BNG1(self.point + other.point)

    def exp(self, scalar: int) -> "BNG1":
        return BNG1(self.point * scalar)

    def precompute(self, window: int = 4) -> "BNG1":
        self.point.precompute(window)
        return self

    def inverse(self) -> "BNG1":
        return BNG1(-self.point)

    def is_identity(self) -> bool:
        return self.point.is_identity()

    def to_bytes(self) -> bytes:
        return self.point.to_bytes()

    def __eq__(self, other):
        return isinstance(other, BNG1) and self.point == other.point

    def __hash__(self):
        return hash(("BNG1", self.point))

    def __repr__(self):
        return f"BNG1({self.point!r})"


class BNG2(GroupElement):
    """Element of G_hat (the paper's second source group) on BN254."""

    __slots__ = ("point",)

    def __init__(self, point: G2Point):
        self.point = point

    def op(self, other: "BNG2") -> "BNG2":
        return BNG2(self.point + other.point)

    def exp(self, scalar: int) -> "BNG2":
        return BNG2(self.point * scalar)

    def precompute(self, window: int = 4) -> "BNG2":
        self.point.precompute(window)
        return self

    def inverse(self) -> "BNG2":
        return BNG2(-self.point)

    def is_identity(self) -> bool:
        return self.point.is_identity()

    def to_bytes(self) -> bytes:
        return self.point.to_bytes()

    def __eq__(self, other):
        return isinstance(other, BNG2) and self.point == other.point

    def __hash__(self):
        return hash(("BNG2", self.point))

    def __repr__(self):
        return f"BNG2({self.point!r})"


class BNGT(GroupElement):
    """Element of G_T on BN254 (order-r subgroup of F_p12*)."""

    __slots__ = ("element",)

    def __init__(self, element: GTElement):
        self.element = element

    def op(self, other: "BNGT") -> "BNGT":
        return BNGT(self.element * other.element)

    def exp(self, scalar: int) -> "BNGT":
        return BNGT(self.element ** (scalar % bn254.R))

    def precompute(self, window: int = 4) -> "BNGT":
        """Build a GT fixed-base window table (zero squarings per exp)."""
        self.element.precompute(window)
        return self

    def inverse(self) -> "BNGT":
        return BNGT(self.element.inverse())

    def is_identity(self) -> bool:
        return self.element.is_one()

    def to_bytes(self) -> bytes:
        from repro.math.tower import f12_to_wvec
        vec = f12_to_wvec(self.element.value)
        return b"".join(
            c.to_bytes(32, "big") for pair in vec for c in pair)

    def __eq__(self, other):
        return isinstance(other, BNGT) and self.element == other.element

    def __hash__(self):
        return hash(("BNGT", self.element))

    def __repr__(self):
        return f"BNGT({self.element!r})"


class BN254Group(BilinearGroup):
    """The production backend on the BN254 pairing."""

    name = "bn254"
    order = bn254.R
    symmetric = False
    g1_bytes = 32
    g2_bytes = 64
    gt_bytes = 384
    secure = True

    def g1_identity(self) -> BNG1:
        return BNG1(G1Point.identity())

    def g2_identity(self) -> BNG2:
        return BNG2(G2Point.identity())

    def gt_identity(self) -> BNGT:
        return BNGT(GTElement.one())

    def g1_generator(self) -> BNG1:
        return BNG1(G1Point.generator())

    def g2_generator(self) -> BNG2:
        return BNG2(G2Point.generator())

    def derive_g1(self, label: str) -> BNG1:
        return BNG1(derive_generator_g1(label))

    def derive_g2(self, label: str) -> BNG2:
        return BNG2(derive_generator_g2(label))

    def hash_to_g1_vector(self, data: bytes, dimension: int,
                          domain: str = "H") -> List[BNG1]:
        points = hash_to_g1_vector(data, dimension,
                                   domain=f"repro:{domain}")
        return [BNG1(point) for point in points]

    def pair(self, a: BNG1, b: BNG2) -> BNGT:
        return BNGT(multi_pairing([(a.point, b.point)]))

    def pairing_product(
            self, pairs: Iterable[Tuple[BNG1, BNG2]]) -> BNGT:
        return BNGT(multi_pairing([(a.point, b.point) for a, b in pairs]))

    def prepare_pair(self, element: BNG2) -> BNG2:
        """Cache the Miller-loop line coefficients of a fixed G_hat point
        (memoized on the underlying :class:`G2Point`)."""
        prepare_g2(element.point)
        return element

    def multi_exp(self, bases: Sequence[GroupElement],
                  scalars: Sequence[int]) -> GroupElement:
        bases, scalars = self._checked_multi_exp_args(bases, scalars)
        first = bases[0]
        if isinstance(first, BNG1):
            point_cls, wrapper = G1Point, BNG1
        elif isinstance(first, BNG2):
            point_cls, wrapper = G2Point, BNG2
        else:
            # GT product: one shared cyclotomic-squaring chain.
            return BNGT(gt_multi_exp(
                [base.element for base in bases], scalars))
        points = [base.point for base in bases]
        # Bases carrying fixed-base tables multiply faster through them
        # than through a shared doubling chain.
        if all(point._table is not None for point in points):
            result = None
            for point, scalar in zip(points, scalars):
                term = point * scalar
                result = term if result is None else result + term
            return wrapper(result)
        return wrapper(point_cls.multi_mul(points, scalars))

    def batch_normalize(self, elements: Sequence[GroupElement]) -> None:
        """Normalize the Jacobian representations of many source-group
        elements with one shared field inversion per group."""
        G1Point.batch_normalize(
            [e.point for e in elements if isinstance(e, BNG1)])
        G2Point.batch_normalize(
            [e.point for e in elements if isinstance(e, BNG2)])

    def random_scalar(self, rng=None) -> int:
        return random_scalar(self.order, rng)

    def g1_from_bytes(self, data: bytes) -> BNG1:
        return BNG1(G1Point.from_bytes(data))

    def g2_from_bytes(self, data: bytes) -> BNG2:
        return BNG2(G2Point.from_bytes(data))
