"""Abstract interface for bilinear groups (multiplicative notation).

Elements follow the paper's multiplicative convention: ``a * b`` is the
group operation, ``a ** k`` exponentiation by an integer scalar, and
``a.inverse()`` (or ``a ** -1``) the group inverse.  The neutral element of
each group is exposed on the group object.

The single most important method for efficiency is
:meth:`BilinearGroup.pairing_product_is_one`: every verification equation in
the paper has the shape ``prod_i e(X_i, Y_hat_i) = 1`` and backends can
evaluate the product with one shared final exponentiation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple


class GroupElement(ABC):
    """A multiplicative group element (G, G_hat or G_T)."""

    __slots__ = ()

    @abstractmethod
    def op(self, other: "GroupElement") -> "GroupElement":
        """The group operation."""

    @abstractmethod
    def exp(self, scalar: int) -> "GroupElement":
        """Exponentiation by an integer (reduced modulo the group order)."""

    @abstractmethod
    def inverse(self) -> "GroupElement":
        """The group inverse."""

    @abstractmethod
    def is_identity(self) -> bool:
        """True for the neutral element."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical byte encoding (used for sizes and hashing)."""

    def precompute(self, window: int = 4) -> "GroupElement":
        """Hint that this element will be exponentiated many times.

        Backends with fixed-base window tables build one; others ignore
        the hint.  Returns self for chaining.
        """
        return self

    # -- operator sugar ----------------------------------------------------
    def __mul__(self, other):
        return self.op(other)

    def __truediv__(self, other):
        return self.op(other.inverse())

    def __pow__(self, scalar: int):
        if scalar < 0:
            return self.exp(-scalar).inverse()
        return self.exp(scalar)

    def __bool__(self):
        return not self.is_identity()


class BilinearGroup(ABC):
    """A bilinear environment (G, G_hat, G_T) of prime order with a pairing."""

    #: Backend name ("bn254", "toy", ...).
    name: str
    #: The common prime order of the three groups.
    order: int
    #: True when G == G_hat (Type-1 / symmetric pairing).
    symmetric: bool
    #: Encoded element sizes in bytes (reported by the size experiments).
    g1_bytes: int
    g2_bytes: int
    gt_bytes: int
    #: True when the backend provides real cryptographic hardness.
    secure: bool

    # -- neutral elements and generators ------------------------------------
    @abstractmethod
    def g1_identity(self) -> GroupElement: ...

    @abstractmethod
    def g2_identity(self) -> GroupElement: ...

    @abstractmethod
    def gt_identity(self) -> GroupElement: ...

    @abstractmethod
    def g1_generator(self) -> GroupElement: ...

    @abstractmethod
    def g2_generator(self) -> GroupElement: ...

    # -- random-oracle derivations ------------------------------------------
    @abstractmethod
    def derive_g1(self, label: str) -> GroupElement:
        """Generator of G with unknown discrete log (random-oracle derived)."""

    @abstractmethod
    def derive_g2(self, label: str) -> GroupElement:
        """Generator of G_hat with unknown discrete log."""

    @abstractmethod
    def hash_to_g1_vector(self, data: bytes, dimension: int,
                          domain: str = "H") -> List[GroupElement]:
        """The random oracle H : {0,1}* -> G^dimension."""

    # -- pairing -------------------------------------------------------------
    @abstractmethod
    def pair(self, a: GroupElement, b: GroupElement) -> GroupElement:
        """The bilinear map e(a, b) with a in G and b in G_hat."""

    @abstractmethod
    def pairing_product(
            self,
            pairs: Iterable[Tuple[GroupElement, GroupElement]],
    ) -> GroupElement:
        """``prod_i e(a_i, b_i)`` (backends share the final exponentiation)."""

    def pairing_product_is_one(
            self,
            pairs: Sequence[Tuple[GroupElement, GroupElement]],
    ) -> bool:
        """Check the canonical verification shape ``prod e(a_i, b_i) = 1``."""
        return self.pairing_product(pairs).is_identity()

    def prepare_pair(self, element: GroupElement) -> GroupElement:
        """Precompute pairing state for a G_hat element used as a fixed
        pairing argument (``g_z``, ``g_r``, public/verification keys).

        Backends that cache Miller-loop line coefficients do so here; the
        default is a no-op.  Returns the element for chaining.
        """
        return element

    # -- fast exponentiation --------------------------------------------------
    @staticmethod
    def _checked_multi_exp_args(bases, scalars):
        """Shared argument validation for every ``multi_exp`` override."""
        bases = list(bases)
        scalars = list(scalars)
        if len(bases) != len(scalars):
            raise ValueError("bases and scalars must have equal length")
        if not bases:
            raise ValueError("multi_exp needs at least one base")
        return bases, scalars

    def multi_exp(self, bases: Sequence[GroupElement],
                  scalars: Sequence[int]) -> GroupElement:
        """``prod_i bases[i] ** scalars[i]`` — one multi-exponentiation.

        All bases must come from the same group — G, G_hat **or G_T**
        (target-group products appear in GS-proof and LHSPS folding).
        The default folds naively; backends override with multi-scalar
        multiplication sharing one doubling/squaring chain per group.
        """
        bases, scalars = self._checked_multi_exp_args(bases, scalars)
        result = None
        for base, scalar in zip(bases, scalars):
            term = base ** (scalar % self.order)
            result = term if result is None else result * term
        return result

    def batch_normalize(self, elements: Sequence[GroupElement]) -> None:
        """Hint that many elements are about to enter hot arithmetic.

        Backends with projective internal representations normalize them
        together (one shared field inversion) so the follow-up MSM builds
        its tables from affine inputs; the default is a no-op.  Only
        cached representation may change — never the group value.
        """

    # -- scalars / deserialization --------------------------------------------
    @abstractmethod
    def random_scalar(self, rng=None) -> int:
        """Uniform scalar in [0, order)."""

    @abstractmethod
    def g1_from_bytes(self, data: bytes) -> GroupElement: ...

    @abstractmethod
    def g2_from_bytes(self, data: bytes) -> GroupElement: ...

    def __repr__(self):
        return f"<BilinearGroup {self.name}>"
