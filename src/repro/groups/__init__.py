"""Bilinear-group abstraction with interchangeable backends.

The paper writes its schemes multiplicatively over asymmetric groups
``(G, G_hat, G_T)``.  Protocol code in this library is written against the
:class:`repro.groups.api.BilinearGroup` interface, so every scheme runs on:

* ``bn254`` — the real BN254 optimal-ate pairing (cryptographically
  meaningful, pure Python, ~60 ms per pairing);
* ``toy`` — a discrete-log backend where elements are exponents modulo the
  same prime order.  The algebra (bilinearity, key homomorphism, Lagrange
  interpolation in the exponent) is identical, so all protocol logic tests
  run fast.  It offers **no security whatsoever** and says so loudly.
* ``toy-symmetric`` — the toy backend with G = G_hat, used by the
  Appendix D.2 construction which requires a Type-1 pairing.

Use :func:`get_group` to obtain a backend by name.
"""

from repro.groups.api import BilinearGroup, GroupElement
from repro.groups.bn254_backend import BN254Group
from repro.groups.toy_backend import ToyGroup

_CACHE = {}


def get_group(name: str = "bn254") -> BilinearGroup:
    """Return a (cached) bilinear group backend by name."""
    if name not in _CACHE:
        if name == "bn254":
            _CACHE[name] = BN254Group()
        elif name == "toy":
            _CACHE[name] = ToyGroup(symmetric=False)
        elif name == "toy-symmetric":
            _CACHE[name] = ToyGroup(symmetric=True)
        else:
            raise ValueError(f"unknown bilinear group backend: {name!r}")
    return _CACHE[name]


__all__ = ["BilinearGroup", "GroupElement", "BN254Group", "ToyGroup",
           "get_group"]
