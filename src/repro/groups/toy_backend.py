"""Discrete-log ("toy") bilinear backend for fast protocol testing.

Elements of G, G_hat and G_T are represented by their discrete logarithms
relative to nominal generators, i.e. plain integers modulo the BN254 group
order.  The pairing multiplies exponents:

    e(g^a, g_hat^b) = gt^(a*b)

Every algebraic identity the schemes rely on — bilinearity, key
homomorphism, Lagrange interpolation in the exponent, Groth-Sahai
commitment algebra — holds exactly, so protocol logic exercised on this
backend behaves identically to BN254 while running orders of magnitude
faster.

**This backend provides no security.** Discrete logarithms are stored in
the clear; an adversary with access to backend internals can forge
anything.  The security-game tests that run on it only drive adversaries
through the public scheme API.  ``secure = False`` lets callers refuse it.

The ``symmetric=True`` variant identifies G and G_hat (a Type-1 pairing),
which Appendix D.2 of the paper requires and which no BN curve offers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.curves import bn254
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.rng import hash_to_int, random_scalar

_ORDER = bn254.R


class ToyElement(GroupElement):
    """A group element represented by its discrete log (an int mod r)."""

    __slots__ = ("log", "tag")

    def __init__(self, log: int, tag: str):
        self.log = log % _ORDER
        self.tag = tag

    def op(self, other: "ToyElement") -> "ToyElement":
        if self.tag != other.tag:
            raise TypeError(
                f"cannot combine {self.tag} element with {other.tag}")
        return ToyElement(self.log + other.log, self.tag)

    def exp(self, scalar: int) -> "ToyElement":
        return ToyElement(self.log * (scalar % _ORDER), self.tag)

    def inverse(self) -> "ToyElement":
        return ToyElement(-self.log, self.tag)

    def is_identity(self) -> bool:
        return self.log == 0

    def to_bytes(self) -> bytes:
        sizes = {"G1": 32, "G2": 64, "GT": 384}
        return self.log.to_bytes(sizes[self.tag], "big")

    def __eq__(self, other):
        return (isinstance(other, ToyElement) and self.tag == other.tag
                and self.log == other.log)

    def __hash__(self):
        return hash(("toy", self.tag, self.log))

    def __repr__(self):
        return f"ToyElement({self.tag}, log={self.log})"


class ToyGroup(BilinearGroup):
    """The fast, insecure, algebra-identical test backend."""

    order = _ORDER
    g1_bytes = 32
    g2_bytes = 64
    gt_bytes = 384
    secure = False

    def __init__(self, symmetric: bool = False):
        self.symmetric = symmetric
        self.name = "toy-symmetric" if symmetric else "toy"
        self._g2_tag = "G1" if symmetric else "G2"

    def g1_identity(self) -> ToyElement:
        return ToyElement(0, "G1")

    def g2_identity(self) -> ToyElement:
        return ToyElement(0, self._g2_tag)

    def gt_identity(self) -> ToyElement:
        return ToyElement(0, "GT")

    def g1_generator(self) -> ToyElement:
        return ToyElement(1, "G1")

    def g2_generator(self) -> ToyElement:
        return ToyElement(1, self._g2_tag)

    def derive_g1(self, label: str) -> ToyElement:
        log = hash_to_int("toy:derive:G1", label.encode(), _ORDER)
        return ToyElement(log or 1, "G1")

    def derive_g2(self, label: str) -> ToyElement:
        log = hash_to_int("toy:derive:G2", label.encode(), _ORDER)
        return ToyElement(log or 1, self._g2_tag)

    def hash_to_g1_vector(self, data: bytes, dimension: int,
                          domain: str = "H") -> List[ToyElement]:
        return [
            ToyElement(
                hash_to_int(f"toy:{domain}:{k}", data, _ORDER), "G1")
            for k in range(dimension)
        ]

    def pair(self, a: ToyElement, b: ToyElement) -> ToyElement:
        if a.tag != "G1" or b.tag != self._g2_tag:
            raise TypeError("pairing expects (G1, G2) arguments")
        return ToyElement(a.log * b.log, "GT")

    def pairing_product(
            self, pairs: Iterable[Tuple[ToyElement, ToyElement]]
    ) -> ToyElement:
        total = 0
        for a, b in pairs:
            if a.tag != "G1" or b.tag != self._g2_tag:
                raise TypeError("pairing expects (G1, G2) arguments")
            total = (total + a.log * b.log) % _ORDER
        return ToyElement(total, "GT")

    def multi_exp(self, bases: Sequence[ToyElement],
                  scalars: Sequence[int]) -> ToyElement:
        # Covers all three groups (G, G_hat and G_T): discrete logs make a
        # multi-exponentiation a dot product, so the toy backend exposes
        # the same GT multi_exp interface as BN254 for free.
        bases, scalars = self._checked_multi_exp_args(bases, scalars)
        tag = bases[0].tag
        total = 0
        for base, scalar in zip(bases, scalars):
            if base.tag != tag:
                raise TypeError(
                    f"cannot combine {tag} element with {base.tag}")
            total += base.log * scalar
        return ToyElement(total, tag)

    def random_scalar(self, rng=None) -> int:
        return random_scalar(_ORDER, rng)

    def g1_from_bytes(self, data: bytes) -> ToyElement:
        return ToyElement(int.from_bytes(data, "big"), "G1")

    def g2_from_bytes(self, data: bytes) -> ToyElement:
        return ToyElement(int.from_bytes(data, "big"), self._g2_tag)
