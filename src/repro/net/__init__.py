"""Synchronous-network substrate for the distributed protocols.

Implements the communication model of Section 2.1 of the paper:

* communication proceeds in synchronized rounds; messages sent in round k
  are delivered at the beginning of round k+1;
* all players share a reliable, authenticated broadcast channel the
  adversary can read but not tamper with;
* every pair of players shares a private authenticated channel;
* the adversary is **rushing**: in every round it sees the honest players'
  messages before choosing the corrupted players' messages;
* corruption is **erasure-free**: corrupting a player hands the adversary
  that player's entire history, exactly as the paper requires.

The simulator also keeps per-round message/byte metrics, which is how the
DKG cost experiments (T4) are measured.
"""

from repro.net.simulator import Message, SyncNetwork, broadcast, private
from repro.net.player import Player
from repro.net.adversary import Adversary, PassiveAdversary
from repro.net.metrics import NetworkMetrics

__all__ = [
    "Message", "SyncNetwork", "broadcast", "private",
    "Player", "Adversary", "PassiveAdversary", "NetworkMetrics",
]
