"""Adversary harness for the distributed protocols.

The base :class:`Adversary` supports the paper's threat model:

* **adaptive corruption** at any time, based on the full view so far;
* **erasure-free state capture**: corruption returns the victim's entire
  object state and message history;
* **rushing**: each round, the adversary produces the corrupted players'
  messages after seeing the honest players' messages;
* full control of corrupted players afterwards (arbitrary deviation).

Concrete adversaries override :meth:`act`.  :class:`PassiveAdversary` is
the default no-adversary stand-in; :class:`CrashAdversary` and
:class:`BadShareAdversary` live with the DKG tests and attacks module.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ProtocolError
from repro.net.simulator import Message


class Adversary:
    """Base adversary: keeps a corruption budget and captured states."""

    def __init__(self, max_corruptions: int | None = None):
        self.corrupted: set = set()
        self.max_corruptions = max_corruptions
        #: index -> captured internal state (at corruption time).
        self.captured_states: Dict[int, dict] = {}
        #: Everything the adversary observed, round by round.
        self.view: List[dict] = []
        self._network = None

    def attach(self, network) -> None:
        self._network = network

    # -- corruption ------------------------------------------------------------
    def corrupt(self, index: int) -> dict:
        """Adaptively corrupt a player; returns its full internal state."""
        if index in self.corrupted:
            return self.captured_states[index]
        if (self.max_corruptions is not None
                and len(self.corrupted) >= self.max_corruptions):
            raise ProtocolError("corruption budget exhausted")
        state = self._network.corrupt_player(index)
        self.corrupted.add(index)
        self.captured_states[index] = state
        return state

    # -- per-round hook ----------------------------------------------------------
    def act(self, round_no: int, honest_messages: Sequence[Message],
            deliveries: Sequence[Message]) -> List[Message]:
        """Produce the corrupted players' round messages (rushing).

        ``honest_messages`` are the messages honest players are about to
        send this round; ``deliveries`` are the messages delivered to the
        adversary (broadcasts + private messages to corrupted players).
        """
        self.view.append({
            "round": round_no,
            "honest": list(honest_messages),
            "deliveries": list(deliveries),
        })
        return []

    def observe_final(self, deliveries: Sequence[Message]) -> None:
        self.view.append({"round": "final", "deliveries": list(deliveries)})


class PassiveAdversary(Adversary):
    """Observes broadcasts but corrupts nobody and sends nothing."""


class ScriptedAdversary(Adversary):
    """Runs a user-provided callable each round; useful in tests.

    The callable receives ``(adversary, round_no, honest_messages,
    deliveries)`` and returns the corrupted players' messages.
    """

    def __init__(self, script, max_corruptions: int | None = None):
        super().__init__(max_corruptions)
        self._script = script

    def act(self, round_no, honest_messages, deliveries):
        super().act(round_no, honest_messages, deliveries)
        return list(self._script(self, round_no, honest_messages,
                                 deliveries) or [])
