"""Base class for protocol players.

A player is a state machine driven by the synchronous network: each round
it receives the messages delivered to it (broadcasts plus private messages
addressed to it) and returns the messages it wants to send.  The entire
internal state of the player object is what an adaptive corruption hands to
the adversary — players must therefore keep *everything* they ever computed
(the erasure-free model: "whenever the adversary corrupts a player, it
learns the entire history of that player").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.net.simulator import Message


class Player(ABC):
    """A protocol participant with a 1-based index."""

    def __init__(self, index: int):
        self.index = index
        #: Full message history, kept for the erasure-free corruption model.
        self.history: List[Sequence[Message]] = []

    @abstractmethod
    def on_round(self, round_no: int,
                 inbox: Sequence[Message]) -> List[Message]:
        """Process round ``round_no`` deliveries, return outbound messages."""

    def record_round(self, inbox: Sequence[Message]) -> None:
        self.history.append(tuple(inbox))

    @abstractmethod
    def finalize(self):
        """Produce the player's protocol output once all rounds ran."""

    def internal_state(self) -> dict:
        """Everything the adversary learns upon corruption (erasure-free)."""
        return dict(self.__dict__)
