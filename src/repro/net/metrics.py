"""Communication metrics for protocol runs.

``NetworkMetrics`` counts messages and (estimated) bytes per round and
distinguishes broadcast from point-to-point traffic.  A round in which no
player sends anything does not count as a *communication round* — this is
how "Pedersen's DKG takes one round in the optimistic case" is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


def estimate_size(payload) -> int:
    """Rough wire size of a message payload in bytes.

    Group elements know their encoded size; scalars count as 32 bytes
    (Z_p for a 254-bit order); containers are summed recursively.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 32
    if isinstance(payload, float):
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in payload)
    to_bytes = getattr(payload, "to_bytes", None)
    if callable(to_bytes):
        return len(to_bytes())
    # Dataclass-like fallback: sum over public attributes.
    attrs = getattr(payload, "__dict__", None)
    if attrs:
        return sum(estimate_size(v) for v in attrs.values())
    slots = getattr(payload, "__slots__", None)
    if slots:
        return sum(
            estimate_size(getattr(payload, s)) for s in slots
            if hasattr(payload, s))
    raise TypeError(f"cannot estimate wire size of {type(payload)!r}")


@dataclass
class TrafficCounter:
    """Message/byte accounting for a request stream.

    The protocol simulator counts per-round traffic via
    :class:`NetworkMetrics`; long-lived services have no rounds, so they
    meter each direction (ingress requests, egress results) with one of
    these.  Sizes come from the same :func:`estimate_size` accounting the
    simulator uses, so service telemetry and protocol tables report
    comparable bytes.
    """

    messages: int = 0
    bytes_total: int = 0

    def record(self, payload) -> int:
        size = estimate_size(payload)
        self.messages += 1
        self.bytes_total += size
        return size

    def summary(self) -> Dict[str, int]:
        return {"messages": self.messages, "bytes": self.bytes_total}


@dataclass
class RoundMetrics:
    messages: int = 0
    broadcasts: int = 0
    point_to_point: int = 0
    bytes_total: int = 0


@dataclass
class NetworkMetrics:
    """Aggregated communication statistics for one protocol execution."""

    rounds: List[RoundMetrics] = field(default_factory=list)

    def record(self, round_no: int, is_broadcast: bool, size: int) -> None:
        while len(self.rounds) <= round_no:
            self.rounds.append(RoundMetrics())
        entry = self.rounds[round_no]
        entry.messages += 1
        entry.bytes_total += size
        if is_broadcast:
            entry.broadcasts += 1
        else:
            entry.point_to_point += 1

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_total for r in self.rounds)

    @property
    def communication_rounds(self) -> int:
        """Rounds in which at least one message was sent."""
        return sum(1 for r in self.rounds if r.messages > 0)

    def summary(self) -> Dict[str, int]:
        return {
            "communication_rounds": self.communication_rounds,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
        }
