"""Communication metrics for protocol runs, and Prometheus exposition.

``NetworkMetrics`` counts messages and (estimated) bytes per round and
distinguishes broadcast from point-to-point traffic.  A round in which no
player sends anything does not count as a *communication round* — this is
how "Pedersen's DKG takes one round in the optimistic case" is measured.

The Prometheus half (:class:`MetricFamily`, :class:`Histogram`,
:func:`render_prometheus`) renders any of the repo's stats objects into
the text exposition format (version 0.0.4) a real scraper ingests —
``# HELP`` / ``# TYPE`` comments, escaped label values, and the
``_bucket``/``_sum``/``_count`` triplet for histograms.  It is
deliberately tiny and dependency-free: the gateway's ``GET /metrics``
endpoint is the only producer, and ``tools/serve_smoke.py`` parses the
output line-by-line as the format gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


def estimate_size(payload) -> int:
    """Rough wire size of a message payload in bytes.

    Group elements know their encoded size; scalars count as 32 bytes
    (Z_p for a 254-bit order); containers are summed recursively.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 32
    if isinstance(payload, float):
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in payload)
    to_bytes = getattr(payload, "to_bytes", None)
    if callable(to_bytes):
        return len(to_bytes())
    # Dataclass-like fallback: sum over public attributes.
    attrs = getattr(payload, "__dict__", None)
    if attrs:
        return sum(estimate_size(v) for v in attrs.values())
    slots = getattr(payload, "__slots__", None)
    if slots:
        return sum(
            estimate_size(getattr(payload, s)) for s in slots
            if hasattr(payload, s))
    raise TypeError(f"cannot estimate wire size of {type(payload)!r}")


@dataclass
class TrafficCounter:
    """Message/byte accounting for a request stream.

    The protocol simulator counts per-round traffic via
    :class:`NetworkMetrics`; long-lived services have no rounds, so they
    meter each direction (ingress requests, egress results) with one of
    these.  Sizes come from the same :func:`estimate_size` accounting the
    simulator uses, so service telemetry and protocol tables report
    comparable bytes.
    """

    messages: int = 0
    bytes_total: int = 0

    def record(self, payload) -> int:
        size = estimate_size(payload)
        self.messages += 1
        self.bytes_total += size
        return size

    def summary(self) -> Dict[str, int]:
        return {"messages": self.messages, "bytes": self.bytes_total}


@dataclass
class RoundMetrics:
    messages: int = 0
    broadcasts: int = 0
    point_to_point: int = 0
    bytes_total: int = 0


@dataclass
class NetworkMetrics:
    """Aggregated communication statistics for one protocol execution."""

    rounds: List[RoundMetrics] = field(default_factory=list)

    def record(self, round_no: int, is_broadcast: bool, size: int) -> None:
        while len(self.rounds) <= round_no:
            self.rounds.append(RoundMetrics())
        entry = self.rounds[round_no]
        entry.messages += 1
        entry.bytes_total += size
        if is_broadcast:
            entry.broadcasts += 1
        else:
            entry.point_to_point += 1

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_total for r in self.rounds)

    @property
    def communication_rounds(self) -> int:
        """Rounds in which at least one message was sent."""
        return sum(1 for r in self.rounds if r.messages > 0)

    def summary(self) -> Dict[str, int]:
        return {
            "communication_rounds": self.communication_rounds,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ---------------------------------------------------------------------------

#: Latency bucket upper bounds in milliseconds.  Chosen for the service's
#: observed range (sub-ms toy-backend windows up to multi-second bn254
#: robust combines); ``+Inf`` is implicit and always rendered last.
DEFAULT_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 10000.0,
)


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline only (the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double-quote, newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_value(value: float) -> str:
    """Render a sample value: integers without a decimal point, floats
    with ``repr`` precision, infinities in Prometheus spelling."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def format_sample(name: str, labels: Mapping[str, str],
                  value: float) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        rendered = ",".join(
            f'{key}="{escape_label_value(str(labels[key]))}"'
            for key in labels)
        return f"{name}{{{rendered}}} {format_value(value)}"
    return f"{name} {format_value(value)}"


@dataclass
class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe`` is O(buckets); the exposition renders the cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  Buckets
    are upper bounds in the observed unit (milliseconds here).
    """

    buckets: Sequence[float] = DEFAULT_BUCKETS_MS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[position] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def samples(self, name: str,
                labels: Mapping[str, str] = ()) -> List[str]:
        """The rendered sample lines for this histogram."""
        labels = dict(labels or {})
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            lines.append(format_sample(
                f"{name}_bucket", {**labels, "le": format_value(bound)},
                cumulative))
        cumulative += self.counts[-1]
        lines.append(format_sample(
            f"{name}_bucket", {**labels, "le": "+Inf"}, cumulative))
        lines.append(format_sample(f"{name}_sum", labels, self.total))
        lines.append(format_sample(f"{name}_count", labels, self.count))
        return lines


@dataclass
class MetricFamily:
    """One named metric with HELP/TYPE metadata and its samples.

    ``kind`` is a Prometheus type (``counter``, ``gauge``,
    ``histogram``).  For counters and gauges, ``samples`` is a list of
    ``(labels, value)`` pairs; for histograms it is a list of
    ``(labels, Histogram)`` pairs — one full bucket series per label
    set.
    """

    name: str
    kind: str
    help: str
    samples: List[Tuple[Mapping[str, str], object]] = field(
        default_factory=list)

    def add(self, labels: Mapping[str, str], value) -> "MetricFamily":
        self.samples.append((dict(labels), value))
        return self

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, value in self.samples:
            if isinstance(value, Histogram):
                lines.extend(value.samples(self.name, labels))
            else:
                lines.append(format_sample(self.name, labels, value))
        return lines


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """The full exposition body.  Families with no samples are skipped
    (a family is its samples; HELP/TYPE for nothing is noise), and the
    body ends with the trailing newline scrapers expect."""
    lines: List[str] = []
    for family in families:
        if family.samples:
            lines.extend(family.render())
    return "\n".join(lines) + "\n"
