"""The synchronous round-based network simulator.

Execution model per round:

1. Every honest player receives its inbox (messages sent to it in the
   previous round) and produces its outbound messages.
2. The adversary — which is *rushing* — is shown the honest messages of the
   current round, may adaptively corrupt further players (receiving their
   full internal state), and then supplies the corrupted players' messages
   for the round.  Corrupting a player mid-round lets the adversary replace
   that player's not-yet-delivered messages, the strongest scheduling.
3. All messages are delivered at the start of the next round: broadcasts to
   everyone (including the adversary), private messages to their recipient
   (or to the adversary when the recipient is corrupted).

The simulator enforces sender authenticity: a message claiming sender i is
only accepted from player i or from an adversary controlling i (the
authenticated-channels assumption of Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.net.metrics import NetworkMetrics, estimate_size


@dataclass(frozen=True)
class Message:
    """A protocol message; ``recipient is None`` means broadcast."""

    sender: int
    recipient: Optional[int]
    kind: str
    payload: Any

    @property
    def is_broadcast(self) -> bool:
        return self.recipient is None

    def size_bytes(self) -> int:
        return estimate_size(self.payload)


def broadcast(sender: int, kind: str, payload) -> Message:
    return Message(sender=sender, recipient=None, kind=kind, payload=payload)


def private(sender: int, recipient: int, kind: str, payload) -> Message:
    return Message(sender=sender, recipient=recipient, kind=kind,
                   payload=payload)


class SyncNetwork:
    """Runs a set of players (and optionally an adversary) in lockstep."""

    def __init__(self, players: Dict[int, "Player"], adversary=None):
        from repro.net.adversary import PassiveAdversary
        self.players = dict(players)
        self.adversary = adversary or PassiveAdversary()
        self.adversary.attach(self)
        self.metrics = NetworkMetrics()
        self._pending: List[Message] = []
        self.round_no = 0
        self.finished = False

    # -- corruption bookkeeping ---------------------------------------------
    @property
    def corrupted(self) -> set:
        return self.adversary.corrupted

    def honest_indices(self) -> List[int]:
        return [i for i in sorted(self.players) if i not in self.corrupted]

    # -- delivery -------------------------------------------------------------
    def _inbox_for(self, index: int,
                   deliveries: Sequence[Message]) -> List[Message]:
        return [
            m for m in deliveries
            if m.is_broadcast or m.recipient == index
        ]

    def run_round(self) -> None:
        """Execute one synchronous round."""
        if self.finished:
            raise ProtocolError("network already finished")
        deliveries, self._pending = self._pending, []
        honest_outbound: List[Message] = []
        for index in self.honest_indices():
            player = self.players[index]
            inbox = self._inbox_for(index, deliveries)
            player.record_round(inbox)
            outbound = player.on_round(self.round_no, inbox)
            for message in outbound:
                if message.sender != index:
                    raise ProtocolError(
                        f"player {index} tried to forge sender "
                        f"{message.sender}")
            honest_outbound.extend(outbound)
        # Rushing adversary: sees honest messages and the deliveries to the
        # players it controls before answering; may corrupt more players.
        adversarial_outbound = self.adversary.act(
            round_no=self.round_no,
            honest_messages=list(honest_outbound),
            deliveries=[
                m for m in deliveries
                if m.is_broadcast or m.recipient in self.corrupted
            ],
        )
        for message in adversarial_outbound:
            if message.sender not in self.corrupted:
                raise ProtocolError(
                    "adversary can only send as corrupted players")
        # Corruptions during act() may retract the victim's messages.
        honest_outbound = [
            m for m in honest_outbound if m.sender not in self.corrupted
        ]
        outbound = honest_outbound + list(adversarial_outbound)
        for message in outbound:
            self.metrics.record(self.round_no, message.is_broadcast,
                                message.size_bytes())
        self._pending = outbound
        self.round_no += 1

    def run(self, num_rounds: int) -> Dict[int, Any]:
        """Run ``num_rounds`` rounds plus a final delivery, then finalize.

        The extra final round lets messages sent in the last active round
        reach their recipients before ``finalize`` is called.
        """
        for _ in range(num_rounds):
            self.run_round()
        # Final delivery with no new sends.
        deliveries = self._pending
        self._pending = []
        for index in self.honest_indices():
            player = self.players[index]
            player.record_round(self._inbox_for(index, deliveries))
        self.adversary.observe_final(
            [m for m in deliveries
             if m.is_broadcast or m.recipient in self.corrupted])
        self.finished = True
        return {
            index: self.players[index].finalize()
            for index in self.honest_indices()
        }

    # -- corruption interface (called through the adversary) -------------------
    def corrupt_player(self, index: int) -> dict:
        """Hand player ``index``'s full state to the adversary."""
        if index not in self.players:
            raise ProtocolError(f"no player with index {index}")
        return self.players[index].internal_state()
