"""Concrete attacks reproduced from the paper's discussion.

The headline experiment is the **public-key bias attack on Pedersen's
DKG** (Gennaro et al.; recalled in the paper's Section 1): a rushing
adversary controlling c players waits for the honest dealings, computes
the 2^c candidate public keys obtained by including/excluding each
corrupted contribution, and keeps the subset whose resulting PK satisfies
a target predicate.  Exclusion is forced by simply not dealing, which
makes every honest player complain and the lazy dealer disqualified.

Against an unbiased DKG a fixed balanced predicate holds with probability
1/2; the attack pushes that to ``1 - 2^{-2^c}`` (75% for one corrupted
player, ~94% for two).  The same experiment against the GJKR baseline
stays at 1/2 because a qualified dealer that goes silent during the
extraction phase has its contribution *reconstructed*, not dropped.

The paper's point — and the reason the attack matters here — is that this
bias is provably harmless for the Section 3 signature scheme: adaptive
security holds anyway (Theorem 1), so the cheap one-round DKG can be kept.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dkg.gjkr_dkg import GJKRPlayer, run_gjkr_dkg
from repro.dkg.pedersen_dkg import (
    NUM_ROUNDS, PedersenDKGPlayer, run_pedersen_dkg,
)
from repro.groups.api import BilinearGroup, GroupElement
from repro.net.adversary import Adversary
from repro.net.simulator import Message


def default_predicate(components: Sequence[GroupElement]) -> bool:
    """A balanced predicate on the public key: LSB of its hash."""
    digest = hashlib.sha256(
        b"".join(c.to_bytes() for c in components)).digest()
    return digest[-1] & 1 == 0


@dataclass
class BiasAttackResult:
    trials: int
    successes: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


class PedersenBiasAdversary(Adversary):
    """Rushing adversary that conditionally withholds corrupted dealings."""

    def __init__(self, corrupted_indices: Sequence[int],
                 predicate: Callable[[Sequence[GroupElement]], bool],
                 group: BilinearGroup, g_z, g_r, t: int, n: int,
                 num_pairs: int = 2, rng=None):
        super().__init__(max_corruptions=len(corrupted_indices))
        self.targets = list(corrupted_indices)
        self.predicate = predicate
        self.group = group
        self.g_z = g_z
        self.g_r = g_r
        self.t = t
        self.n = n
        self.num_pairs = num_pairs
        self.rng = rng
        #: Honest player objects the adversary runs for included corruptions.
        self.minions: Dict[int, PedersenDKGPlayer] = {}
        self.included: List[int] = []
        self.achieved: Optional[bool] = None

    def act(self, round_no: int, honest_messages, deliveries):
        super().act(round_no, honest_messages, deliveries)
        if round_no == 0:
            for index in self.targets:
                self.corrupt(index)
                self.minions[index] = PedersenDKGPlayer(
                    index, self.group, self.g_z, self.g_r, self.t, self.n,
                    num_pairs=self.num_pairs, rng=self.rng)
            # Rushing: honest dealings are visible; prepare our dealings,
            # then choose which subset of them to actually send.
            minion_messages = {
                index: minion.on_round(0, [])
                for index, minion in self.minions.items()
            }
            honest_products = self._component_products(honest_messages)
            choice = self._choose_subset(minion_messages, honest_products)
            self.included = choice
            outbound = []
            for index in choice:
                outbound.extend(minion_messages[index])
            return outbound
        # Later rounds: included minions follow the protocol honestly
        # (their dealings are consistent, so no complaints target them).
        outbound = []
        for index in self.included:
            minion = self.minions[index]
            inbox = [
                m for m in deliveries
                if m.is_broadcast or m.recipient == index
            ]
            minion.record_round(inbox)
            outbound.extend(minion.on_round(round_no, inbox))
        return outbound

    # -- attack internals ---------------------------------------------------
    def _component_products(self, honest_messages) -> List[GroupElement]:
        products: List[GroupElement] = [None] * self.num_pairs
        for message in honest_messages:
            if message.kind != "commitments":
                continue
            if message.sender in self.corrupted:
                # Round-0 messages of players corrupted mid-round are
                # retracted by the network; the attack replaces them with
                # its own dealings, so they must not count as honest input.
                continue
            commitments = message.payload["commitments"]
            for k in range(self.num_pairs):
                w0 = commitments[k][0]
                products[k] = w0 if products[k] is None else products[k] * w0
        return products

    def _choose_subset(self, minion_messages, honest_products):
        """Pick the inclusion subset whose PK satisfies the predicate.

        Prefers larger subsets (less conspicuous) among satisfying ones;
        falls back to including everyone when no subset works.
        """
        contributions = {}
        for index, messages in minion_messages.items():
            for message in messages:
                if message.kind == "commitments":
                    contributions[index] = [
                        message.payload["commitments"][k][0]
                        for k in range(self.num_pairs)
                    ]
        indices = list(contributions)
        for size in range(len(indices), -1, -1):
            for subset in combinations(indices, size):
                components = list(honest_products)
                for index in subset:
                    for k in range(self.num_pairs):
                        components[k] = (
                            components[k] * contributions[index][k])
                if self.predicate(components):
                    self.achieved = True
                    return list(subset)
        self.achieved = False
        return indices


def pedersen_bias_experiment(
        group: BilinearGroup, t: int, n: int, trials: int,
        num_corrupted: int = 2,
        predicate: Callable = default_predicate, rng=None,
) -> BiasAttackResult:
    """Run the bias attack ``trials`` times; count predicate successes."""
    g_z = group.derive_g2("bias:g_z")
    g_r = group.derive_g2("bias:g_r")
    successes = 0
    for _ in range(trials):
        adversary = PedersenBiasAdversary(
            corrupted_indices=list(range(1, num_corrupted + 1)),
            predicate=predicate, group=group, g_z=g_z, g_r=g_r,
            t=t, n=n, rng=rng)
        results, _network = run_pedersen_dkg(
            group, g_z, g_r, t, n, adversary=adversary, rng=rng)
        reference = next(iter(results.values()))
        if predicate(reference.public_components):
            successes += 1
    return BiasAttackResult(trials=trials, successes=successes)


def honest_pedersen_baseline(
        group: BilinearGroup, t: int, n: int, trials: int,
        predicate: Callable = default_predicate, rng=None,
) -> BiasAttackResult:
    """Honest runs of the DKG — the predicate rate should be ~1/2."""
    g_z = group.derive_g2("bias:g_z")
    g_r = group.derive_g2("bias:g_r")
    successes = 0
    for _ in range(trials):
        results, _network = run_pedersen_dkg(group, g_z, g_r, t, n, rng=rng)
        reference = next(iter(results.values()))
        if predicate(reference.public_components):
            successes += 1
    return BiasAttackResult(trials=trials, successes=successes)


class GJKRDropoutAdversary(Adversary):
    """Plays honestly through the sharing phase, goes silent afterwards.

    This is the best analogue of the Pedersen bias strategy against GJKR:
    by the time the Feldman extraction reveals anything about the public
    key, the qualified set is already fixed, so the only remaining move is
    to withhold the extraction broadcast — which triggers reconstruction
    instead of exclusion.
    """

    def __init__(self, corrupted_indices: Sequence[int],
                 predicate: Callable[[Sequence[GroupElement]], bool],
                 group: BilinearGroup, g_z, g_r, t: int, n: int, rng=None):
        super().__init__(max_corruptions=len(corrupted_indices))
        self.targets = list(corrupted_indices)
        self.predicate = predicate
        self.group = group
        self.g_z = g_z
        self.g_r = g_r
        self.t = t
        self.n = n
        self.rng = rng
        self.minions: Dict[int, GJKRPlayer] = {}
        self.dropped: List[int] = []

    def act(self, round_no: int, honest_messages, deliveries):
        super().act(round_no, honest_messages, deliveries)
        if round_no == 0:
            for index in self.targets:
                self.corrupt(index)
                self.minions[index] = GJKRPlayer(
                    index, self.group, self.g_z, self.g_r, self.t, self.n,
                    rng=self.rng)
        outbound = []
        for index, minion in self.minions.items():
            inbox = [
                m for m in deliveries
                if m.is_broadcast or m.recipient == index
            ]
            minion.record_round(inbox)
            messages = minion.on_round(round_no, inbox)
            if round_no >= 3:
                # Rushing: decide whether withholding the extraction
                # broadcast would flip the predicate; go silent if so.
                # (GJKR reconstructs regardless, so this cannot help.)
                if index not in self.dropped:
                    self.dropped.append(index)
                continue
            outbound.extend(messages)
        return outbound


def gjkr_bias_experiment(
        group: BilinearGroup, t: int, n: int, trials: int,
        num_corrupted: int = 2,
        predicate: Callable = default_predicate, rng=None,
) -> BiasAttackResult:
    """The dropout strategy against GJKR; the rate should stay ~1/2."""
    g_z = group.derive_g2("bias:g_z")
    g_r = group.derive_g2("bias:g_r")
    successes = 0
    for _ in range(trials):
        adversary = GJKRDropoutAdversary(
            corrupted_indices=list(range(1, num_corrupted + 1)),
            predicate=predicate, group=group, g_z=g_z, g_r=g_r,
            t=t, n=n, rng=rng)
        results, _network = run_gjkr_dkg(
            group, g_z, g_r, t, n, adversary=adversary, rng=rng)
        reference = next(iter(results.values()))
        if predicate([reference.public_key]):
            successes += 1
    return BiasAttackResult(trials=trials, successes=successes)


class BadShareAdversary(Adversary):
    """Robustness attack: corrupted players emit garbage partial signatures.

    Used by the F5 experiment — Combine must still succeed whenever t+1
    honest partials are present, because Share-Verify filters the garbage.
    """

    def __init__(self, corrupted_indices: Sequence[int]):
        super().__init__(max_corruptions=len(corrupted_indices))
        self.targets = list(corrupted_indices)

    def act(self, round_no, honest_messages, deliveries):
        super().act(round_no, honest_messages, deliveries)
        if round_no == 0:
            for index in self.targets:
                self.corrupt(index)
        return []
