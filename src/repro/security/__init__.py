"""Security experiments: the Definition 1 game and concrete attacks.

* :mod:`repro.security.games` — an executable version of the paper's
  adaptive chosen-message security game (Definition 1), with pluggable
  adversary strategies.  Used to sanity-check that sub-threshold
  adversaries cannot win and that the winning condition bookkeeping
  (the set V = C united with the M*-signing queries) is enforced.
* :mod:`repro.security.attacks` — implemented attacks: the rushing-
  adversary bias on Pedersen's DKG public key (the paper's Section 1
  remark that "even a static adversary can bias the distribution by
  corrupting only two players"), its failure against the GJKR baseline,
  and robustness attacks on Combine.
"""

from repro.security.games import (
    AdaptiveChosenMessageGame, GameResult, LagrangeForgeryAdversary,
    BelowThresholdAdversary,
)
from repro.security.attacks import (
    pedersen_bias_experiment, gjkr_bias_experiment, BiasAttackResult,
)

__all__ = [
    "AdaptiveChosenMessageGame", "GameResult",
    "LagrangeForgeryAdversary", "BelowThresholdAdversary",
    "pedersen_bias_experiment", "gjkr_bias_experiment", "BiasAttackResult",
]
