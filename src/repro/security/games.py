"""Executable security game of Definition 1 (adaptive chosen-message).

The challenger plays all honest servers.  The adversary interleaves, in any
order and adaptively:

* ``corrupt(i)`` — receive SK_i (and the player's full erasure-free state
  when the corruption happens during the DKG);
* ``sign_query(i, M)`` — receive Share-Sign(SK_i, M) from an honest server.

It finally outputs a pair (M*, sigma*).  It **wins** iff

* ``|V| < t + 1`` where ``V = C  union  {i : sign query (i, M*)}``, and
* ``Verify(PK, M*, sigma*) = 1``.

This mirrors the paper's game including its strong twist: partial-signing
queries *on the forgery message itself* are allowed as long as V stays
below the threshold.

The harness exists to test the implementation, not to prove security:
strategies that should lose (below-threshold interpolation, share mauling,
random guessing) must lose, and the bookkeeping must catch trivial wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.core.keys import PartialSignature, Signature
from repro.core.scheme import LJYThresholdScheme
from repro.errors import SecurityGameError
from repro.math.lagrange import lagrange_coefficients


@dataclass
class GameResult:
    won: bool
    reason: str
    corrupted: Set[int] = field(default_factory=set)
    signed_forgery_indices: Set[int] = field(default_factory=set)


class ChallengerAPI:
    """The oracle interface handed to adversary strategies."""

    def __init__(self, game: "AdaptiveChosenMessageGame"):
        self._game = game
        self.public_key = game.public_key
        self.verification_keys = game.verification_keys
        self.t = game.scheme.params.t
        self.n = game.scheme.params.n

    def corrupt(self, index: int):
        return self._game._corrupt(index)

    def sign_query(self, index: int, message: bytes) -> PartialSignature:
        return self._game._sign_query(index, message)


class AdaptiveChosenMessageGame:
    """Challenger for Definition 1 over the Section 3 scheme."""

    def __init__(self, scheme: LJYThresholdScheme, rng=None,
                 use_dkg: bool = False):
        self.scheme = scheme
        self.rng = rng
        if use_dkg:
            from repro.dkg.pedersen_dkg import (
                dkg_result_to_keys, run_pedersen_dkg,
            )
            params = scheme.params
            results, _network = run_pedersen_dkg(
                params.group, params.g_z, params.g_r, params.t, params.n,
                rng=rng)
            shares = {}
            public_key = verification_keys = None
            for i, result in results.items():
                public_key, share, verification_keys = dkg_result_to_keys(
                    scheme, result)
                shares[i] = share
            self.public_key = public_key
            self.shares = shares
            self.verification_keys = verification_keys
        else:
            self.public_key, self.shares, self.verification_keys = (
                scheme.dealer_keygen(rng=rng))
        self.corrupted: Set[int] = set()
        #: message -> set of honest indices that partially signed it.
        self.signed_by: Dict[bytes, Set[int]] = {}

    # -- oracles --------------------------------------------------------------
    def _corrupt(self, index: int):
        if index not in self.shares:
            raise SecurityGameError(f"no player {index}")
        self.corrupted.add(index)
        return self.shares[index]

    def _sign_query(self, index: int, message: bytes) -> PartialSignature:
        if index not in self.shares:
            raise SecurityGameError(f"no player {index}")
        if index in self.corrupted:
            raise SecurityGameError(
                "signing queries are for honest players; the adversary "
                "already holds this share")
        self.signed_by.setdefault(message, set()).add(index)
        return self.scheme.share_sign(self.shares[index], message)

    # -- play -------------------------------------------------------------------
    def play(self, adversary: Callable[[ChallengerAPI],
                                       Tuple[bytes, Signature]]
             ) -> GameResult:
        api = ChallengerAPI(self)
        forgery = adversary(api)
        if forgery is None:
            return GameResult(False, "adversary aborted", set(self.corrupted))
        message, signature = forgery
        signers = self.signed_by.get(message, set())
        exposed = self.corrupted | signers
        if len(exposed) >= self.scheme.params.t + 1:
            return GameResult(
                False,
                f"trivial: |V| = {len(exposed)} >= t + 1",
                set(self.corrupted), set(signers))
        if self.scheme.verify(self.public_key, message, signature):
            return GameResult(True, "valid non-trivial forgery",
                              set(self.corrupted), set(signers))
        return GameResult(False, "signature rejected",
                          set(self.corrupted), set(signers))


# ---------------------------------------------------------------------------
# Adversary strategies (all of which must lose against a correct scheme)
# ---------------------------------------------------------------------------

class BelowThresholdAdversary:
    """Corrupts t players, queries t partials on M*, interpolates anyway.

    With only t points of a degree-t polynomial the interpolation at 0 is
    underdetermined; the produced (z, r) satisfies the share equations it
    saw but not the public-key equation, so Verify must reject.
    """

    def __init__(self, message: bytes = b"forgery-target"):
        self.message = message

    def __call__(self, api: ChallengerAPI):
        t = api.t
        shares = {i: api.corrupt(i) for i in range(1, t + 1)}
        # Interpolate pretending index t+1's share is zero.
        indices = list(range(1, t + 2))
        order = api.public_key.params.group.order
        coefficients = lagrange_coefficients(indices, order)
        h_1, h_2 = api.public_key.params.hash_message(self.message)
        z = r = None
        for i in range(1, t + 1):
            share = shares[i]
            weight = coefficients[i]
            z_term = ((h_1 ** (-share.a_1)) * (h_2 ** (-share.a_2))) ** weight
            r_term = ((h_1 ** (-share.b_1)) * (h_2 ** (-share.b_2))) ** weight
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
        # The missing (t+1)-th term is guessed as the identity.
        return self.message, Signature(z=z, r=r)


class LagrangeForgeryAdversary:
    """Gets t partials on M* plus t' < t corruptions; tries to combine.

    Exercises the strong version of the definition: signing queries on M*
    are allowed, but t partials plus the identity guess cannot produce the
    missing degree of freedom.
    """

    def __init__(self, message: bytes = b"strong-forgery-target"):
        self.message = message

    def __call__(self, api: ChallengerAPI):
        t = api.t
        order = api.public_key.params.group.order
        partials = [
            api.sign_query(i, self.message) for i in range(1, t + 1)
        ]
        indices = [p.index for p in partials] + [t + 1]
        coefficients = lagrange_coefficients(indices, order)
        z = r = None
        for partial in partials:
            weight = coefficients[partial.index]
            z_term = partial.z ** weight
            r_term = partial.r ** weight
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
        return self.message, Signature(z=z, r=r)


class MauledSignatureAdversary:
    """Obtains a full valid signature on M, submits it for M* != M."""

    def __init__(self, signed: bytes = b"benign", target: bytes = b"target"):
        self.signed = signed
        self.target = target

    def __call__(self, api: ChallengerAPI):
        t = api.t
        partials = [api.sign_query(i, self.signed)
                    for i in range(1, t + 2)]
        scheme = LJYThresholdScheme(api.public_key.params)
        signature = scheme.combine(
            api.public_key, api.verification_keys, self.signed, partials)
        # A signature on `signed` replayed for `target`.
        return self.target, signature


class HonestThresholdAdversary:
    """Control experiment: crosses the threshold, wins trivially — the game
    must flag it as a *trivial* (non-)win."""

    def __init__(self, message: bytes = b"trivial"):
        self.message = message

    def __call__(self, api: ChallengerAPI):
        t = api.t
        partials = [api.sign_query(i, self.message)
                    for i in range(1, t + 2)]
        scheme = LJYThresholdScheme(api.public_key.params)
        signature = scheme.combine(
            api.public_key, api.verification_keys, self.message, partials)
        return self.message, signature
