"""Plain-text table rendering for the experiment harness.

Every benchmark prints its table through this module so the rows in
EXPERIMENTS.md and the test logs line up; no third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Table:
    """An ordered collection of homogeneous rows."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns: {sorted(missing)}")
        self.rows.append(values)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def print(self) -> None:
        print(self.render())


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Dict[str, object]]) -> str:
    rendered_rows = [
        [_cell(row[column]) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[k]) for r in rendered_rows))
        if rendered_rows else len(str(column))
        for k, column in enumerate(columns)
    ]
    lines = [f"== {title} =="]
    header = " | ".join(
        str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(
            cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
