"""Benchmark-harness helpers: table rendering and operation counting."""

from repro.bench.tables import Table, format_table

__all__ = ["Table", "format_table"]
