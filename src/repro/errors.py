"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Protocol-level misbehaviour (bad shares, invalid
signatures, malformed messages) raises specific subclasses, which the
robustness machinery relies on to distinguish adversarial inputs from bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError):
    """Invalid scheme or protocol parameters (e.g. t, n out of range)."""


class SerializationError(ReproError):
    """Malformed byte encoding of a group element, share or signature."""


class NotOnCurveError(SerializationError):
    """A decoded point does not lie on the expected curve or subgroup."""


class InvalidShareError(ReproError):
    """A secret share or partial signature failed verification."""


class InvalidSignatureError(ReproError):
    """A full signature failed verification."""


class CombineError(ReproError):
    """Combine was called with an unusable set of partial signatures."""


class ProtocolError(ReproError):
    """A distributed protocol received a malformed or out-of-order message."""


class DisqualifiedError(ProtocolError):
    """An operation referenced a player disqualified during the protocol."""


class SecurityGameError(ReproError):
    """The security-game harness was driven incorrectly by an adversary."""
