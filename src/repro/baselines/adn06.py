"""Additively-shared threshold RSA in the style of Almansa-Damgard-Nielsen.

The adaptively-secure comparator whose two drawbacks motivate the paper
(Section 1):

* **Theta(n) storage** — the private exponent is split additively,
  ``d = sum_i d_i mod m``, and each additive piece ``d_i`` is then Shamir
  (t, n)-shared so that player j stores its own ``d_j`` *plus one
  polynomial share of every other player's piece*: n + 1 values per
  player versus the O(1) shares of the paper's scheme (experiment T3);
* **interaction on failure** — when a player's multiplicative
  contribution ``x^{d_i}`` is missing, the others must run an extra
  *repair round*, publishing their shares of ``d_i`` in the exponent so
  the missing contribution can be interpolated (the "only non-interactive
  when all players are honest" remark).

The repair interpolation uses the same integer-Lagrange-with-Delta trick
as Shoup's scheme so nobody needs the secret modulus m.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.baselines.rsa_params import SAFE_PRIME_PAIRS
from repro.baselines.rsa_threshold import (
    _extended_gcd, integer_lagrange_at_zero,
)
from repro.errors import CombineError, ParameterError
from repro.math.rng import hash_to_int, random_scalar
from repro.sharing.shamir import validate_threshold


@dataclass(frozen=True)
class ADN06PlayerState:
    """What one player persists — size grows linearly with n."""

    index: int
    #: Own additive piece d_i.
    additive_share: int
    #: Shamir shares of every player's additive piece: dealer -> f_dealer(i).
    backup_shares: Dict[int, int]

    def storage_values(self) -> int:
        """Number of stored Z_m values (the T3 storage metric)."""
        return 1 + len(self.backup_shares)

    def storage_bytes(self, modulus_bits: int) -> int:
        return self.storage_values() * ((modulus_bits + 7) // 8)


@dataclass(frozen=True)
class ADN06PublicKey:
    n_modulus: int
    e: int

    @property
    def modulus_bits(self) -> int:
        return self.n_modulus.bit_length()


@dataclass(frozen=True)
class ADN06Signature:
    y: int
    modulus_bits: int
    #: Number of communication rounds the signing took (1 or 2).
    rounds: int = 1

    def to_bytes(self) -> bytes:
        return self.y.to_bytes((self.modulus_bits + 7) // 8, "big")

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


class ADN06ThresholdRSA:
    """Additive (n, n) sharing with (t, n) polynomial backup of each piece."""

    def __init__(self, t: int, n: int, modulus_bits: int = 3072,
                 hash_domain: str = "adn06:H"):
        validate_threshold(t, n)
        if modulus_bits not in SAFE_PRIME_PAIRS:
            raise ParameterError(
                f"no safe primes embedded for {modulus_bits}-bit moduli")
        self.t = t
        self.n = n
        self.hash_domain = hash_domain
        p, q = SAFE_PRIME_PAIRS[modulus_bits]
        self.n_modulus = p * q
        self.m = ((p - 1) // 2) * ((q - 1) // 2)
        self.delta = math.factorial(n)
        self.e = self._prime_above(max(n, 2))

    @staticmethod
    def _prime_above(lower: int) -> int:
        candidate = max(3, lower + 1) | 1
        while True:
            if all(candidate % f for f in range(3, int(candidate**0.5) + 1, 2)):
                return candidate
            candidate += 2

    # -- keys -------------------------------------------------------------
    def dealer_keygen(self, rng=None
                      ) -> Tuple[ADN06PublicKey,
                                 Dict[int, ADN06PlayerState]]:
        d = pow(self.e, -1, self.m)
        # Additive split: d = sum d_i mod m.
        pieces = [random_scalar(self.m, rng) for _ in range(self.n - 1)]
        pieces.append((d - sum(pieces)) % self.m)
        additive = {i + 1: pieces[i] for i in range(self.n)}
        # Each piece is (t, n)-Shamir-shared over Z_m.
        backup: Dict[int, Dict[int, int]] = {j: {} for j in additive}
        for dealer, piece in additive.items():
            coeffs = [piece] + [
                random_scalar(self.m, rng) for _ in range(self.t)]
            for i in range(1, self.n + 1):
                acc = 0
                for coeff in reversed(coeffs):
                    acc = (acc * i + coeff) % self.m
                backup[dealer][i] = acc
        states = {
            i: ADN06PlayerState(
                index=i,
                additive_share=additive[i],
                backup_shares={
                    dealer: backup[dealer][i] for dealer in additive},
            )
            for i in range(1, self.n + 1)
        }
        return ADN06PublicKey(n_modulus=self.n_modulus, e=self.e), states

    # -- hashing -------------------------------------------------------------
    def hash_message(self, message: bytes) -> int:
        """x = H(M)^2 mod N — squaring forces x into Q_N (order | m)."""
        raw = hash_to_int(self.hash_domain, message, self.n_modulus)
        return pow(raw, 2, self.n_modulus)

    # -- signing flows -------------------------------------------------------
    def multiplicative_share(self, state: ADN06PlayerState,
                             message: bytes) -> int:
        """Round-1 contribution ``x^{d_i}`` of a live player."""
        x = self.hash_message(message)
        return pow(x, state.additive_share, self.n_modulus)

    def repair_share(self, state: ADN06PlayerState, missing: int,
                     message: bytes) -> int:
        """Round-2 contribution towards reconstructing player ``missing``:
        ``x^{f_missing(i)}`` published by helper i."""
        x = self.hash_message(message)
        return pow(x, state.backup_shares[missing], self.n_modulus)

    def reconstruct_missing(self, message: bytes, missing: int,
                            repair_shares: Mapping[int, int]) -> int:
        """Interpolate ``x^{Delta * d_missing}`` from t+1 repair shares.

        The integer Lagrange coefficients carry one factor of Delta, so the
        reconstructed exponent is ``Delta * d_missing`` (mod the hidden m).
        """
        if len(repair_shares) < self.t + 1:
            raise CombineError(
                f"need {self.t + 1} repair shares for player {missing}")
        subset = dict(list(repair_shares.items())[: self.t + 1])
        coefficients = integer_lagrange_at_zero(subset.keys(), self.delta)
        w = 1
        for index, share in subset.items():
            w = w * pow(share, coefficients[index], self.n_modulus) \
                % self.n_modulus
        return w

    def sign(self, public_key: ADN06PublicKey,
             states: Mapping[int, ADN06PlayerState], message: bytes,
             live_players: Optional[Set[int]] = None) -> ADN06Signature:
        """Run the signing protocol; a second round fires iff anyone is down.

        ``live_players`` simulates crashed/deviating servers: their
        multiplicative shares are missing and must be reconstructed by the
        survivors (who must number at least t+1).
        """
        nn = self.n_modulus
        x = self.hash_message(message)
        live = set(states) if live_players is None else set(live_players)
        if len(live) < self.t + 1:
            raise CombineError("fewer than t+1 live players")
        missing = sorted(set(states) - live)
        if not missing:
            # Optimistic single-round path: y = prod x^{d_i} = x^d.
            y = 1
            for state in states.values():
                y = y * self.multiplicative_share(state, message) % nn
            return ADN06Signature(y=y, modulus_bits=nn.bit_length(),
                                  rounds=1)
        # Repair round: everything is scaled to the exponent Delta so the
        # arithmetic stays integral (the reconstruction below carries one
        # factor of Delta from the integer Lagrange coefficients).
        exponent_scale = self.delta
        w = 1
        for index in sorted(live):
            contribution = self.multiplicative_share(states[index], message)
            w = w * pow(contribution, exponent_scale, nn) % nn
        for absent in missing:
            repair = {
                helper: self.repair_share(states[helper], absent, message)
                for helper in sorted(live)[: self.t + 1]
            }
            w = w * self.reconstruct_missing(message, absent, repair) % nn
        # w = x^{Delta d}; extract the e-th root a la Shoup.
        g, a, b = _extended_gcd(exponent_scale, public_key.e)
        if g != 1:
            raise CombineError("gcd(Delta, e) != 1")
        y = pow(w, a, nn) * pow(x, b, nn) % nn
        return ADN06Signature(y=y, modulus_bits=nn.bit_length(), rounds=2)

    def verify(self, public_key: ADN06PublicKey, message: bytes,
               signature: ADN06Signature) -> bool:
        x = self.hash_message(message)
        return pow(signature.y, public_key.e, public_key.n_modulus) == x
