"""Shoup's "Practical Threshold Signatures" (Eurocrypt 2000).

The classic non-interactive robust threshold RSA scheme and the paper's
main size comparator: at the 128-bit level a signature is one element of
Z_N with a 3072-bit modulus (the paper quotes 3076 bits including
encoding overhead) versus 512 bits for the Section 3 scheme.

Construction summary:

* N = pq with safe primes, m = p'q', public prime exponent e > n,
  d = e^{-1} mod m shared with a degree-t polynomial over Z_m;
* partial signature on x = H(M): ``x_i = x^{2*Delta*s_i}`` with
  Delta = n!, accompanied by a Chaum-Pedersen-style proof of discrete-log
  equality with the verification key ``v_i = v^{s_i}``;
* Combine raises partials to integer Lagrange coefficients
  ``lambda_i = Delta * prod (0 - j)/(i - j)`` giving ``w = x^{4 Delta^2 d}``
  and extracts the e-th root with the extended Euclid step
  ``y = w^a x^b`` where ``a*(4 Delta^2) + b*e = 1``.

Key generation requires a trusted dealer (safe primes cannot be produced
by known efficient fully-distributed protocols) — one of the demerits the
paper's "born distributed" scheme avoids.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.baselines.rsa_params import SAFE_PRIME_PAIRS
from repro.errors import CombineError, ParameterError
from repro.math.rng import hash_to_int, random_scalar
from repro.sharing.shamir import validate_threshold


def integer_lagrange_at_zero(indices, delta: int) -> Dict[int, int]:
    """``lambda_i = Delta * prod_{j != i} (0 - j)/(i - j)`` — integers.

    Delta = n! clears every denominator, which is the trick that lets the
    combiner work without knowing the secret modulus m.
    """
    points = list(indices)
    coefficients = {}
    for i in points:
        numerator, denominator = delta, 1
        for j in points:
            if j == i:
                continue
            numerator *= -j
            denominator *= (i - j)
        if numerator % denominator != 0:
            raise ParameterError("Delta does not clear the denominator")
        coefficients[i] = numerator // denominator
    return coefficients


@dataclass(frozen=True)
class ShoupPublicKey:
    n_modulus: int
    e: int
    v: int                       # verifier for the share proofs
    verification_values: Tuple[int, ...]   # v_i = v^{s_i}, 1-based

    @property
    def modulus_bits(self) -> int:
        return self.n_modulus.bit_length()

    def to_bytes(self) -> bytes:
        size = (self.modulus_bits + 7) // 8
        return self.n_modulus.to_bytes(size, "big") + self.e.to_bytes(
            (self.e.bit_length() + 7) // 8 or 1, "big")


@dataclass(frozen=True)
class ShoupPartialSignature:
    index: int
    x_i: int
    #: Chaum-Pedersen proof (challenge, response).
    proof: Tuple[int, int]

    def to_bytes(self) -> bytes:
        parts = [self.x_i, self.proof[0], self.proof[1]]
        return b"".join(
            p.to_bytes((p.bit_length() + 7) // 8 or 1, "big") for p in parts)


@dataclass(frozen=True)
class ShoupSignature:
    y: int
    modulus_bits: int

    def to_bytes(self) -> bytes:
        return self.y.to_bytes((self.modulus_bits + 7) // 8, "big")

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


class ShoupThresholdRSA:
    """The Shoup'00 scheme over pre-generated safe primes."""

    def __init__(self, t: int, n: int, modulus_bits: int = 3072,
                 hash_domain: str = "shoup:H"):
        validate_threshold(t, n)
        if modulus_bits not in SAFE_PRIME_PAIRS:
            raise ParameterError(
                f"no safe primes embedded for {modulus_bits}-bit moduli; "
                f"available: {sorted(SAFE_PRIME_PAIRS)}")
        self.t = t
        self.n = n
        self.hash_domain = hash_domain
        p, q = SAFE_PRIME_PAIRS[modulus_bits]
        self.p, self.q = p, q
        self.n_modulus = p * q
        self.m = ((p - 1) // 2) * ((q - 1) // 2)
        self.delta = math.factorial(n)
        # Public exponent: the first prime > n (Shoup requires e > n).
        self.e = self._prime_above(max(n, 2))
        self._challenge_bits = 128

    @staticmethod
    def _prime_above(lower: int) -> int:
        candidate = max(3, lower + 1) | 1
        while True:
            if all(candidate % f for f in range(3, int(candidate**0.5) + 1, 2)):
                return candidate
            candidate += 2

    # -- keys ------------------------------------------------------------
    def dealer_keygen(self, rng=None):
        d = pow(self.e, -1, self.m)
        coeffs = [d] + [
            random_scalar(self.m, rng) for _ in range(self.t)]
        shares = {}
        for i in range(1, self.n + 1):
            acc = 0
            for coeff in reversed(coeffs):
                acc = (acc * i + coeff) % self.m
            shares[i] = acc
        # v generates the squares of Z_N* with overwhelming probability.
        v = pow(random_scalar(self.n_modulus, rng) or 2, 2, self.n_modulus)
        verification_values = tuple(
            pow(v, shares[i], self.n_modulus) for i in range(1, self.n + 1))
        public_key = ShoupPublicKey(
            n_modulus=self.n_modulus, e=self.e, v=v,
            verification_values=verification_values)
        return public_key, shares

    # -- hashing ------------------------------------------------------------
    def hash_message(self, message: bytes) -> int:
        return hash_to_int(self.hash_domain, message, self.n_modulus)

    # -- signing -------------------------------------------------------------
    def share_sign(self, public_key: ShoupPublicKey, index: int, share: int,
                   message: bytes, rng=None) -> ShoupPartialSignature:
        nn = self.n_modulus
        x = self.hash_message(message)
        x_i = pow(x, 2 * self.delta * share, nn)
        # Chaum-Pedersen equality proof for
        # log_v(v_i) == log_{x^{4 Delta}}(x_i^2).
        x_tilde = pow(x, 4 * self.delta, nn)
        secret_bound = 1 << (nn.bit_length()
                             + 2 * self._challenge_bits)
        r = random_scalar(secret_bound, rng)
        v_prime = pow(public_key.v, r, nn)
        x_prime = pow(x_tilde, r, nn)
        challenge = self._proof_challenge(
            public_key, x_tilde, index, x_i, v_prime, x_prime)
        response = share * challenge + r
        return ShoupPartialSignature(
            index=index, x_i=x_i, proof=(challenge, response))

    def _proof_challenge(self, public_key: ShoupPublicKey, x_tilde: int,
                         index: int, x_i: int, v_prime: int,
                         x_prime: int) -> int:
        h = hashlib.sha256()
        for value in (public_key.v, x_tilde,
                      public_key.verification_values[index - 1],
                      pow(x_i, 2, self.n_modulus), v_prime, x_prime):
            h.update(value.to_bytes((self.n_modulus.bit_length() + 7) // 8,
                                    "big"))
        return int.from_bytes(h.digest()[:self._challenge_bits // 8], "big")

    def share_verify(self, public_key: ShoupPublicKey, message: bytes,
                     partial: ShoupPartialSignature) -> bool:
        nn = self.n_modulus
        if not 1 <= partial.index <= self.n:
            return False
        x = self.hash_message(message)
        x_tilde = pow(x, 4 * self.delta, nn)
        challenge, response = partial.proof
        v_i = public_key.verification_values[partial.index - 1]
        # Recompute the commitments from the response.
        v_prime = (pow(public_key.v, response, nn)
                   * pow(v_i, -challenge, nn)) % nn
        x_prime = (pow(x_tilde, response, nn)
                   * pow(partial.x_i, -2 * challenge, nn)) % nn
        return challenge == self._proof_challenge(
            public_key, x_tilde, partial.index, partial.x_i,
            v_prime, x_prime)

    # -- combine / verify -------------------------------------------------------
    def combine(self, public_key: ShoupPublicKey, message: bytes,
                partials: Iterable[ShoupPartialSignature],
                verify_shares: bool = True) -> ShoupSignature:
        nn = self.n_modulus
        usable: Dict[int, ShoupPartialSignature] = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares and not self.share_verify(
                    public_key, message, partial):
                continue
            usable[partial.index] = partial
            if len(usable) == self.t + 1:
                break
        if len(usable) < self.t + 1:
            raise CombineError(
                f"need {self.t + 1} valid partial signatures, "
                f"got {len(usable)}")
        x = self.hash_message(message)
        coefficients = integer_lagrange_at_zero(usable.keys(), self.delta)
        w = 1
        for index, partial in usable.items():
            w = w * pow(partial.x_i, 2 * coefficients[index], nn) % nn
        # w = x^{e'} with e' = 4 Delta^2; gcd(e', e) = 1 since e is an odd
        # prime > n.  Extract the e-th root with Bezout coefficients.
        e_prime = 4 * self.delta * self.delta
        g, a, b = _extended_gcd(e_prime, public_key.e)
        if g != 1:
            raise CombineError("gcd(4 Delta^2, e) != 1")
        y = pow(w, a, nn) * pow(x, b, nn) % nn
        return ShoupSignature(y=y, modulus_bits=nn.bit_length())

    def verify(self, public_key: ShoupPublicKey, message: bytes,
               signature: ShoupSignature) -> bool:
        x = self.hash_message(message)
        return pow(signature.y, public_key.e,
                   public_key.n_modulus) == x % public_key.n_modulus


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t
