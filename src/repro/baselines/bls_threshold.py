"""Boldyreva's threshold BLS signatures (PKC 2003).

The statically-secure baseline the paper generalizes: the secret is a
single scalar x shared with Shamir; ``PK = g_hat^x``; a partial signature
is ``H(M)^{x_i}`` verified with ``e(sigma_i, g_hat) = e(H(M), VK_i)``;
t+1 partials interpolate to the unique BLS signature ``H(M)^x``.

Signatures are a single G element (257 bits compressed on BN254) — the
shortest row in the size table — but the scheme's security proof only
covers static corruptions, which is the gap the paper closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.errors import CombineError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.lagrange import lagrange_coefficients
from repro.math.polynomial import Polynomial
from repro.sharing.shamir import validate_threshold


@dataclass(frozen=True)
class BLSPublicKey:
    g_hat: GroupElement       # the G_hat generator used
    y: GroupElement           # g_hat^x

    def to_bytes(self) -> bytes:
        return self.y.to_bytes()


@dataclass(frozen=True)
class BLSPartialSignature:
    index: int
    sigma: GroupElement

    def to_bytes(self) -> bytes:
        return self.sigma.to_bytes()


@dataclass(frozen=True)
class BLSSignature:
    sigma: GroupElement

    def to_bytes(self) -> bytes:
        return self.sigma.to_bytes()

    @property
    def size_bits(self) -> int:
        return len(self.to_bytes()) * 8


class BoldyrevaThresholdBLS:
    """(t, n)-threshold BLS over the shared bilinear-group abstraction."""

    def __init__(self, group: BilinearGroup, t: int, n: int,
                 hash_domain: str = "boldyreva:H"):
        validate_threshold(t, n)
        self.group = group
        self.t = t
        self.n = n
        self.hash_domain = hash_domain
        self.g_hat = group.derive_g2("boldyreva:g_hat")

    def hash_message(self, message: bytes) -> GroupElement:
        (h,) = self.group.hash_to_g1_vector(message, 1, self.hash_domain)
        return h

    # -- keys -----------------------------------------------------------
    def dealer_keygen(self, rng=None):
        poly = Polynomial.random(self.t, self.group.order, rng=rng)
        shares = {i: poly(i) for i in range(1, self.n + 1)}
        public_key = BLSPublicKey(
            g_hat=self.g_hat, y=self.g_hat ** poly.constant_term)
        verification_keys = {
            i: self.g_hat ** share for i, share in shares.items()
        }
        return public_key, shares, verification_keys

    # -- signing -----------------------------------------------------------
    def share_sign(self, index: int, share: int,
                   message: bytes) -> BLSPartialSignature:
        return BLSPartialSignature(
            index=index, sigma=self.hash_message(message) ** share)

    def share_verify(self, verification_key: GroupElement, message: bytes,
                     partial: BLSPartialSignature) -> bool:
        h = self.hash_message(message)
        return self.group.pairing_product_is_one([
            (partial.sigma, self.g_hat),
            (h ** -1, verification_key),
        ])

    def combine(self, verification_keys: Mapping[int, GroupElement],
                message: bytes,
                partials: Iterable[BLSPartialSignature],
                verify_shares: bool = True) -> BLSSignature:
        usable: Dict[int, BLSPartialSignature] = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = verification_keys.get(partial.index)
                if vk is None or not self.share_verify(vk, message, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == self.t + 1:
                break
        if len(usable) < self.t + 1:
            raise CombineError(
                f"need {self.t + 1} valid partial signatures, "
                f"got {len(usable)}")
        coefficients = lagrange_coefficients(usable.keys(), self.group.order)
        sigma = None
        for index, partial in usable.items():
            term = partial.sigma ** coefficients[index]
            sigma = term if sigma is None else sigma * term
        return BLSSignature(sigma=sigma)

    def verify(self, public_key: BLSPublicKey, message: bytes,
               signature: BLSSignature) -> bool:
        h = self.hash_message(message)
        return self.group.pairing_product_is_one([
            (signature.sigma, public_key.g_hat),
            (h ** -1, public_key.y),
        ])
