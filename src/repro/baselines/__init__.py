"""Baseline threshold signature schemes the paper compares against.

* :mod:`repro.baselines.bls_threshold` — Boldyreva's threshold BLS
  (PKC'03): non-interactive and short, but only *statically* secure; the
  paper's Section 3 scheme is its adaptively-secure counterpart.
* :mod:`repro.baselines.rsa_threshold` — Shoup's "Practical Threshold
  Signatures" (Eurocrypt'00): the classic non-interactive threshold RSA
  with 3072-bit-plus signatures at the 128-bit level (the paper's size
  comparison target).
* :mod:`repro.baselines.adn06` — the Almansa-Damgard-Nielsen style
  additively-shared threshold RSA: adaptively secure, but each player
  stores Theta(n) values and missing contributions need an extra repair
  round — the storage/interaction drawbacks the paper eliminates.
"""

from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
from repro.baselines.rsa_threshold import ShoupThresholdRSA
from repro.baselines.adn06 import ADN06ThresholdRSA

__all__ = [
    "BoldyrevaThresholdBLS", "ShoupThresholdRSA", "ADN06ThresholdRSA",
]
