"""Linearly homomorphic structure-preserving signatures (LHSPS).

The paper's central tool (Section 2.3, Appendix C): signatures on vectors
of group elements such that anyone can derive a signature on any linear
combination of signed vectors.  Two concrete one-time schemes are provided:

* :mod:`repro.lhsps.onetime` — the 2-element scheme under the Double
  Pairing assumption (Section 2.3), used by the main threshold scheme.
* :mod:`repro.lhsps.sdp_onetime` — the 3-element scheme under the
  Simultaneous Double Pairing assumption (Appendix F), secure under DLIN.

Both are *key homomorphic*: signatures under sk1 and sk2 multiply into a
signature under sk1 + sk2 — the property that makes non-interactive
threshold signing possible (footnote 4 of the paper).
"""

from repro.lhsps.template import OneTimeLHSPS
from repro.lhsps.onetime import DPLHSPS, DPKeyPair, DPSignature
from repro.lhsps.sdp_onetime import SDPLHSPS, SDPKeyPair, SDPSignature

__all__ = [
    "OneTimeLHSPS",
    "DPLHSPS", "DPKeyPair", "DPSignature",
    "SDPLHSPS", "SDPKeyPair", "SDPSignature",
]
