"""The one-time LHSPS of Section 2.3 (Double Pairing assumption).

Keys: ``sk = {(chi_k, gamma_k)}_{k=1..N}``,
``pk = (g_hat_z, g_hat_r, {g_hat_k = g_hat_z^{chi_k} g_hat_r^{gamma_k}})``.

Signature on a vector ``(M_1, ..., M_N)`` of G elements:

    z = prod_k M_k^{-chi_k},   r = prod_k M_k^{-gamma_k}

Verification:

    1 = e(z, g_hat_z) * e(r, g_hat_r) * prod_k e(M_k, g_hat_k)

Two properties of this scheme carry the whole paper:

* it is **key homomorphic** — the private key space is (Z_p^2)^N under
  addition and signatures multiply accordingly (footnote 4), which makes
  Share-Sign non-interactive in the threshold scheme;
* under DP it is infeasible to produce two distinct signatures on the same
  vector *even knowing the private key*, which is what the adaptive
  security reduction uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.lhsps.template import OneTimeLHSPS
from repro.math.rng import random_scalar


@dataclass(frozen=True)
class DPSignature:
    """A signature (z, r) in G^2."""

    z: GroupElement
    r: GroupElement

    @property
    def components(self) -> Tuple[GroupElement, GroupElement]:
        return (self.z, self.r)

    def to_bytes(self) -> bytes:
        return self.z.to_bytes() + self.r.to_bytes()


@dataclass(frozen=True)
class DPPublicKey:
    """``(g_hat_z, g_hat_r, {g_hat_k})`` — all in G_hat."""

    g_z: GroupElement
    g_r: GroupElement
    g_ks: Tuple[GroupElement, ...]

    @property
    def dimension(self) -> int:
        return len(self.g_ks)

    def to_bytes(self) -> bytes:
        return b"".join(
            e.to_bytes() for e in (self.g_z, self.g_r, *self.g_ks))


@dataclass(frozen=True)
class DPSecretKey:
    """``{(chi_k, gamma_k)}`` scalar pairs."""

    pairs: Tuple[Tuple[int, int], ...]

    def __add__(self, other: "DPSecretKey") -> "DPSecretKey":
        """Key homomorphism: componentwise addition of scalar pairs."""
        if len(self.pairs) != len(other.pairs):
            raise ParameterError("secret key dimension mismatch")
        return DPSecretKey(tuple(
            (a1 + a2, b1 + b2)
            for (a1, b1), (a2, b2) in zip(self.pairs, other.pairs)))


@dataclass(frozen=True)
class DPKeyPair:
    pk: DPPublicKey
    sk: DPSecretKey


class DPLHSPS(OneTimeLHSPS):
    """The Section 2.3 scheme: ns = 2 components, m = 1 equation."""

    ns = 2
    m = 1

    def __init__(self, group: BilinearGroup, dimension: int,
                 g_z: GroupElement | None = None,
                 g_r: GroupElement | None = None):
        if dimension < 1:
            raise ParameterError("dimension must be at least 1")
        super().__init__(group, dimension)
        self.g_z = g_z if g_z is not None else group.derive_g2("lhsps:g_z")
        self.g_r = g_r if g_r is not None else group.derive_g2("lhsps:g_r")

    # -- keys ---------------------------------------------------------------
    def keygen(self, rng=None) -> DPKeyPair:
        pairs = tuple(
            (random_scalar(self.group.order, rng),
             random_scalar(self.group.order, rng))
            for _ in range(self.dimension))
        sk = DPSecretKey(pairs)
        return DPKeyPair(self.public_key_for(sk), sk)

    def public_key_for(self, sk: DPSecretKey) -> DPPublicKey:
        """Recompute the public key matching ``sk`` (key homomorphism).

        Each ``g_hat_k`` is one 2-base multi-exponentiation.
        """
        bases = [self.g_z, self.g_r]
        g_ks = tuple(
            self.group.multi_exp(bases, [chi, gamma])
            for chi, gamma in sk.pairs)
        return DPPublicKey(self.g_z, self.g_r, g_ks)

    # -- signing --------------------------------------------------------------
    def sign(self, sk: DPSecretKey,
             message: Sequence[GroupElement]) -> DPSignature:
        """``z = prod M_k^{-chi_k}``, ``r = prod M_k^{-gamma_k}`` — two
        N-term multi-exponentiations over the message vector."""
        if len(message) != len(sk.pairs):
            raise ParameterError("message dimension mismatch")
        bases = list(message)
        z = self.group.multi_exp(bases, [-chi for chi, _gamma in sk.pairs])
        r = self.group.multi_exp(bases, [-gamma for _chi, gamma in sk.pairs])
        return DPSignature(z, r)

    def verify(self, pk: DPPublicKey, message: Sequence[GroupElement],
               signature: DPSignature) -> bool:
        if len(message) != pk.dimension:
            return False
        if all(m.is_identity() for m in message):
            # The all-ones vector is excluded by definition.
            return False
        pairs = [(signature.z, pk.g_z), (signature.r, pk.g_r)]
        pairs += [(m_k, g_k) for m_k, g_k in zip(message, pk.g_ks)]
        return self.group.pairing_product_is_one(pairs)

    def signature_from_components(
            self, components: Sequence[GroupElement]) -> DPSignature:
        z, r = components
        return DPSignature(z, r)


def derive_signature(group: BilinearGroup,
                     terms: Sequence[Tuple[int, DPSignature]]) -> DPSignature:
    """Convenience SignDerive for (z, r) signatures without a scheme object.

    Each component is one multi-exponentiation over the combination
    weights ("Lagrange in the exponent" when deriving threshold
    signatures).
    """
    weights = [weight for weight, _sig in terms]
    z = group.multi_exp([sig.z for _weight, sig in terms], weights)
    r = group.multi_exp([sig.r for _weight, sig in terms], weights)
    return DPSignature(z, r)
