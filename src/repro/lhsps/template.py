"""The one-time LHSPS template of Appendix C.

Every one-time LHSPS fits the shape: signatures are tuples
``(Z_1, ..., Z_ns)`` of G elements, verification is ``m`` pairing-product
equations

    1 = prod_mu e(Z_mu, F_hat_{j,mu}) * prod_k e(M_k, G_hat_{j,k})

and ``SignDerive`` raises each signature component to the combination
coefficients.  The abstract base class below captures that template; the
generic constructions of Appendix D are written against it, so plugging in
a different one-time LHSPS yields a different signature scheme for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.groups.api import BilinearGroup, GroupElement


class OneTimeLHSPS(ABC):
    """Abstract one-time linearly homomorphic SPS over a bilinear group.

    Concrete schemes fix the signature length ``ns`` and the number of
    verification equations ``m`` (Appendix C template constants).
    """

    #: Number of group elements per signature.
    ns: int
    #: Number of pairing-product verification equations.
    m: int

    def __init__(self, group: BilinearGroup, dimension: int):
        self.group = group
        self.dimension = dimension

    # -- key management ------------------------------------------------------
    @abstractmethod
    def keygen(self, rng=None):
        """Return a key pair; ``pk`` embeds the dimension N."""

    # -- signing ---------------------------------------------------------------
    @abstractmethod
    def sign(self, sk, message: Sequence[GroupElement]):
        """Sign a vector of N group elements (deterministic)."""

    @abstractmethod
    def verify(self, pk, message: Sequence[GroupElement], signature) -> bool:
        """Check the m pairing-product equations; rejects the all-1 vector."""

    # -- homomorphisms ----------------------------------------------------------
    def sign_derive(self, pk, terms: Sequence[Tuple[int, object]]):
        """Signature on ``prod_i M_i^{w_i}`` from signatures on the M_i.

        The template operation: each of the ns components is one
        multi-exponentiation over the combination coefficients.
        """
        weights = [weight for weight, _signature in terms]
        components: List[GroupElement] = [
            self.group.multi_exp(
                [signature.components[position]
                 for _weight, signature in terms], weights)
            for position in range(self.ns)
        ]
        return self.signature_from_components(components)

    @abstractmethod
    def signature_from_components(self, components: Sequence[GroupElement]):
        """Rebuild a signature object from its ns group elements."""

    @staticmethod
    def combine_messages(group: BilinearGroup,
                         terms: Sequence[Tuple[int, Sequence[GroupElement]]]
                         ) -> List[GroupElement]:
        """``prod_i M_i^{w_i}`` componentwise — the derived message."""
        dimension = len(terms[0][1])
        weights = [weight for weight, _message in terms]
        return [
            group.multi_exp(
                [message[k] for _weight, message in terms], weights)
            for k in range(dimension)
        ]
