"""The 3-element one-time LHSPS under the SDP assumption (Appendix F).

This variant stays secure even when an efficient isomorphism exists between
the two source groups (DLIN instead of SXDH).  Keys hold triples
``(a_k, b_k, c_k)``; public keys expose two commitment vectors

    g_hat_k = g_hat_z^{a_k} g_hat_r^{b_k}
    h_hat_k = h_hat_z^{a_k} h_hat_u^{c_k}

and verification checks two pairing-product equations, one per commitment
vector.  Like the DP scheme it is key homomorphic, so the same threshold
machinery applies (Appendix F of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ParameterError
from repro.groups.api import BilinearGroup, GroupElement
from repro.lhsps.template import OneTimeLHSPS
from repro.math.rng import random_scalar


@dataclass(frozen=True)
class SDPSignature:
    """A signature (z, r, u) in G^3."""

    z: GroupElement
    r: GroupElement
    u: GroupElement

    @property
    def components(self) -> Tuple[GroupElement, GroupElement, GroupElement]:
        return (self.z, self.r, self.u)

    def to_bytes(self) -> bytes:
        return self.z.to_bytes() + self.r.to_bytes() + self.u.to_bytes()


@dataclass(frozen=True)
class SDPPublicKey:
    g_z: GroupElement
    g_r: GroupElement
    h_z: GroupElement
    h_u: GroupElement
    g_ks: Tuple[GroupElement, ...]
    h_ks: Tuple[GroupElement, ...]

    @property
    def dimension(self) -> int:
        return len(self.g_ks)

    def to_bytes(self) -> bytes:
        elements = (self.g_z, self.g_r, self.h_z, self.h_u,
                    *self.g_ks, *self.h_ks)
        return b"".join(e.to_bytes() for e in elements)


@dataclass(frozen=True)
class SDPSecretKey:
    """``{(a_k, b_k, c_k)}`` scalar triples."""

    triples: Tuple[Tuple[int, int, int], ...]

    def __add__(self, other: "SDPSecretKey") -> "SDPSecretKey":
        if len(self.triples) != len(other.triples):
            raise ParameterError("secret key dimension mismatch")
        return SDPSecretKey(tuple(
            (a1 + a2, b1 + b2, c1 + c2)
            for (a1, b1, c1), (a2, b2, c2)
            in zip(self.triples, other.triples)))


@dataclass(frozen=True)
class SDPKeyPair:
    pk: SDPPublicKey
    sk: SDPSecretKey


class SDPLHSPS(OneTimeLHSPS):
    """The Appendix F scheme: ns = 3 components, m = 2 equations."""

    ns = 3
    m = 2

    def __init__(self, group: BilinearGroup, dimension: int,
                 g_z=None, g_r=None, h_z=None, h_u=None):
        if dimension < 1:
            raise ParameterError("dimension must be at least 1")
        super().__init__(group, dimension)
        self.g_z = g_z if g_z is not None else group.derive_g2("sdp:g_z")
        self.g_r = g_r if g_r is not None else group.derive_g2("sdp:g_r")
        self.h_z = h_z if h_z is not None else group.derive_g2("sdp:h_z")
        self.h_u = h_u if h_u is not None else group.derive_g2("sdp:h_u")

    # -- keys ---------------------------------------------------------------
    def keygen(self, rng=None) -> SDPKeyPair:
        triples = tuple(
            (random_scalar(self.group.order, rng),
             random_scalar(self.group.order, rng),
             random_scalar(self.group.order, rng))
            for _ in range(self.dimension))
        sk = SDPSecretKey(triples)
        return SDPKeyPair(self.public_key_for(sk), sk)

    def public_key_for(self, sk: SDPSecretKey) -> SDPPublicKey:
        """Both commitment vectors via 2-base multi-exponentiations."""
        g_bases = [self.g_z, self.g_r]
        h_bases = [self.h_z, self.h_u]
        g_ks = tuple(
            self.group.multi_exp(g_bases, [a, b]) for a, b, _c in sk.triples)
        h_ks = tuple(
            self.group.multi_exp(h_bases, [a, c]) for a, _b, c in sk.triples)
        return SDPPublicKey(self.g_z, self.g_r, self.h_z, self.h_u,
                            g_ks, h_ks)

    # -- signing --------------------------------------------------------------
    def sign(self, sk: SDPSecretKey,
             message: Sequence[GroupElement]) -> SDPSignature:
        """Three N-term multi-exponentiations over the message vector."""
        if len(message) != len(sk.triples):
            raise ParameterError("message dimension mismatch")
        bases = list(message)
        z = self.group.multi_exp(bases, [-a for a, _b, _c in sk.triples])
        r = self.group.multi_exp(bases, [-b for _a, b, _c in sk.triples])
        u = self.group.multi_exp(bases, [-c for _a, _b, c in sk.triples])
        return SDPSignature(z, r, u)

    def verify(self, pk: SDPPublicKey, message: Sequence[GroupElement],
               signature: SDPSignature) -> bool:
        if len(message) != pk.dimension:
            return False
        if all(m.is_identity() for m in message):
            return False
        first = [(signature.z, pk.g_z), (signature.r, pk.g_r)]
        first += [(m_k, g_k) for m_k, g_k in zip(message, pk.g_ks)]
        second = [(signature.z, pk.h_z), (signature.u, pk.h_u)]
        second += [(m_k, h_k) for m_k, h_k in zip(message, pk.h_ks)]
        return (self.group.pairing_product_is_one(first)
                and self.group.pairing_product_is_one(second))

    def signature_from_components(
            self, components: Sequence[GroupElement]) -> SDPSignature:
        z, r, u = components
        return SDPSignature(z, r, u)
