"""Resharing DKG: hand the *same* secret to a new committee.

Proactive refresh (:mod:`repro.dkg.refresh`) re-randomizes the sharing
polynomials but keeps the committee fixed.  Resharing changes the
committee itself — signers leave, signers join, the threshold may move
from (t, n) to (t', n') — while the shared master key, and therefore
the public key, is provably unchanged.

The protocol is the classic reshare-by-subsharing construction
(Desmedt-Jajodia; the online-membership operation Thetacrypt-style
deployments need), built from the same Pedersen VSS as Dist-Keygen:

1. **Deal.**  Each current holder P_i deals, per component k, a fresh
   degree-t' Pedersen VSS of its *own share values* ``(A_k(i), B_k(i))``
   over the new committee's indices.  The constant-term commitment of
   that dealing is ``g_z^{A_k(i)} g_r^{B_k(i)}`` — which is exactly the
   dealer's current verification-key component ``V_hat_{k,i}``.  Every
   player checks this equality against the *public* VK, so a dealer
   cannot substitute a different secret without being disqualified:
   this public binding check is what makes "the public key never
   changes" a protocol guarantee instead of an assumption.
2. **Complain / Respond.**  New-committee members verify their
   sub-shares against the broadcast commitments (paper equation (1))
   and complain; dealers answer complaints by publishing the disputed
   sub-shares, exactly as in Dist-Keygen.
3. **Finalize.**  Q = qualified dealers (binding check passed, at most
   t' unanswered complaints).  Any t+1 of them determine the secret, so
   all honest players deterministically pick ``D = sorted(Q)[:t+1]``
   and compute the Lagrange-at-zero coefficients ``lambda_i`` over D.
   New share of player j:  ``sum_{i in D} lambda_i * subshare_i(j)``.
   New VK of player j:     ``prod_{i in D} (prod_l W_hat_ikl^{j^l})^{lambda_i}``
   — publicly computable from the transcript.  The public key is
   untouched: ``prod_{i in D} V_hat_{k,i}^{lambda_i} = g_hat_k`` by
   interpolation of the old degree-t polynomials at zero.

Index semantics: an index identifies one participant across the
transition — a staying member keeps its index, a joiner takes an index
no current holder uses.  Old and new index sets may overlap freely
under that rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.keys import PrivateKeyShare, VerificationKey
from repro.dkg.pedersen_dkg import (
    NUM_ROUNDS, ROUND_COMPLAIN, ROUND_DEAL, ROUND_RESPOND,
)
from repro.errors import ParameterError, ProtocolError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.lagrange import lagrange_coefficients
from repro.net.adversary import Adversary
from repro.net.player import Player
from repro.net.simulator import Message, SyncNetwork, broadcast, private
from repro.sharing.pedersen_vss import PedersenVSS, index_powers

#: The scheme shares two (A, B) pairs.
NUM_PAIRS = 2


@dataclass
class ReshareResult:
    """One player's view of the reshare outcome."""

    index: int
    #: Qualified dealers (old-committee indices), agreed by all honest.
    qualified: List[int]
    #: The t+1 dealers actually recombined (``sorted(qualified)[:t+1]``).
    dealer_set: List[int]
    #: Per component k: this player's new share pair, or ``None`` for a
    #: departing member (dealer-only role).
    share_pairs: Optional[List[Tuple[int, int]]]
    #: Per component k: ``prod_{i in D} V_hat_{k,i}^{lambda_i}`` — must
    #: equal the existing public key components.
    public_components: List[GroupElement]
    #: new-committee j -> per-component verification keys.
    verification_keys: Dict[int, List[GroupElement]] = field(
        default_factory=dict)


class ResharePlayer(Player):
    """A participant in the reshare: dealer (current holder), receiver
    (new-committee member), or both (staying member)."""

    def __init__(self, index: int, group: BilinearGroup,
                 g_z: GroupElement, g_r: GroupElement,
                 old_t: int, new_t: int,
                 dealer_indices: Sequence[int],
                 new_indices: Sequence[int],
                 old_vks: Dict[int, VerificationKey],
                 old_share: Optional[PrivateKeyShare] = None,
                 rng=None):
        super().__init__(index)
        self.group = group
        self.g_z = g_z
        self.g_r = g_r
        self.old_t = old_t
        self.new_t = new_t
        self.dealer_indices = sorted(dealer_indices)
        self.new_indices = sorted(new_indices)
        self.old_vks = old_vks
        self.old_share = old_share
        self.rng = rng
        self.is_dealer = old_share is not None
        self.is_receiver = index in self.new_indices
        self.dealings: List[PedersenVSS] = []
        self.received_commitments: Dict[int, List[List[GroupElement]]] = {}
        self.received_shares: Dict[int, List[Tuple[int, int]]] = {}
        self.complaints_against: Dict[int, set] = {}
        self.disqualified: set = set()
        self._result: Optional[ReshareResult] = None
        self._column_cache: Dict[tuple, List[GroupElement]] = {}

    # -- round machine ---------------------------------------------------------
    def on_round(self, round_no: int,
                 inbox: Sequence[Message]) -> List[Message]:
        if round_no == ROUND_DEAL:
            return self._deal()
        if round_no == ROUND_COMPLAIN:
            self._ingest_dealings(inbox)
            return self._complain()
        if round_no == ROUND_RESPOND:
            self._ingest_complaints(inbox)
            return self._respond()
        return []

    def _deal(self) -> List[Message]:
        if not self.is_dealer:
            return []
        outbound: List[Message] = []
        secrets = [
            (self.old_share.a_1, self.old_share.b_1),
            (self.old_share.a_2, self.old_share.b_2),
        ]
        for k in range(NUM_PAIRS):
            self.dealings.append(PedersenVSS.deal(
                self.group, self.g_z, self.g_r, self.new_t,
                len(self.new_indices), secret_pair=secrets[k],
                rng=self.rng))
        outbound.append(broadcast(
            self.index, "commitments",
            {"commitments": [d.commitments for d in self.dealings]}))
        for j in self.new_indices:
            if j == self.index:
                continue
            outbound.append(private(
                self.index, j, "shares",
                [d.share_for(j) for d in self.dealings]))
        # Self-delivery for a staying member.
        self.received_commitments[self.index] = [
            d.commitments for d in self.dealings]
        if self.is_receiver:
            self.received_shares[self.index] = [
                d.share_for(self.index) for d in self.dealings]
        return outbound

    def _ingest_dealings(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind == "commitments":
                if message.sender not in self.dealer_indices:
                    continue
                commitments = message.payload.get("commitments")
                if (not isinstance(commitments, list)
                        or len(commitments) != NUM_PAIRS or any(
                            len(c) != self.new_t + 1 for c in commitments)):
                    self.disqualified.add(message.sender)
                    continue
                self.received_commitments[message.sender] = commitments
            elif message.kind == "shares" and message.recipient == self.index:
                if message.sender not in self.dealer_indices:
                    continue
                shares = message.payload
                if len(shares) == NUM_PAIRS:
                    self.received_shares[message.sender] = [
                        (int(a), int(b)) for a, b in shares]

    def _binding_holds(self, dealer: int) -> bool:
        """The public anchor: the dealing's constant-term commitment must
        equal the dealer's current verification-key component, proving
        the subshared secret is the dealer's actual share — and hence
        that the recombined secret (and PK) is unchanged."""
        commitments = self.received_commitments.get(dealer)
        vk = self.old_vks.get(dealer)
        if commitments is None or vk is None:
            return False
        return (commitments[0][0] == vk.v_1
                and commitments[1][0] == vk.v_2)

    def _complain(self) -> List[Message]:
        if not self.is_receiver:
            return []
        outbound: List[Message] = []
        for dealer in self.dealer_indices:
            if dealer == self.index:
                continue
            if not self._dealing_is_valid(dealer):
                outbound.append(broadcast(
                    self.index, "complaint", {"accused": dealer}))
        return outbound

    def _dealing_is_valid(self, dealer: int) -> bool:
        commitments = self.received_commitments.get(dealer)
        shares = self.received_shares.get(dealer)
        if commitments is None or shares is None:
            return False
        if not self._binding_holds(dealer):
            return False
        for k in range(NUM_PAIRS):
            if not PedersenVSS.verify_share(
                    self.group, self.g_z, self.g_r, commitments[k],
                    self.index, shares[k]):
                return False
        return True

    def _ingest_complaints(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind != "complaint":
                continue
            if message.sender not in self.new_indices:
                continue    # only new-committee members hold sub-shares
            accused = message.payload.get("accused")
            if isinstance(accused, int):
                self.complaints_against.setdefault(accused, set()).add(
                    message.sender)

    def _respond(self) -> List[Message]:
        complainers = self.complaints_against.get(self.index, set())
        if not self.is_dealer or not complainers:
            return []
        return [
            broadcast(self.index, "response", {
                "complainer": complainer,
                "shares": [d.share_for(complainer) for d in self.dealings],
            })
            for complainer in sorted(complainers)
        ]

    # -- finalization ----------------------------------------------------------
    def finalize(self) -> ReshareResult:
        if self._result is not None:
            return self._result
        responses = self._collect_responses()
        qualified = self._qualified_set(responses)
        if len(qualified) < self.old_t + 1:
            raise ProtocolError(
                "fewer than t+1 qualified dealers — the reshare cannot "
                "reconstruct the secret")
        # Any t+1 qualified dealers determine the secret; every honest
        # player must pick the same subset, so take the smallest indices.
        dealer_set = sorted(qualified)[: self.old_t + 1]
        for dealer, by_complainer in responses.items():
            ours = by_complainer.get(self.index)
            if ours is not None and dealer in qualified:
                self.received_shares[dealer] = ours
        order = self.group.order
        weights = lagrange_coefficients(dealer_set, order, x=0)
        share_pairs = None
        if self.is_receiver:
            share_pairs = []
            for k in range(NUM_PAIRS):
                sum_a = sum(
                    weights[i] * self.received_shares[i][k][0]
                    for i in dealer_set) % order
                sum_b = sum(
                    weights[i] * self.received_shares[i][k][1]
                    for i in dealer_set) % order
                share_pairs.append((sum_a, sum_b))
        public_components = [
            self.group.multi_exp(
                [getattr(self.old_vks[i], f"v_{k + 1}") for i in dealer_set],
                [weights[i] for i in dealer_set])
            for k in range(NUM_PAIRS)
        ]
        verification_keys = {
            j: [
                self._vk_component(dealer_set, weights, k, j)
                for k in range(NUM_PAIRS)
            ]
            for j in self.new_indices
        }
        self._result = ReshareResult(
            index=self.index,
            qualified=sorted(qualified),
            dealer_set=dealer_set,
            share_pairs=share_pairs,
            public_components=public_components,
            verification_keys=verification_keys,
        )
        return self._result

    def _collect_responses(self) -> Dict[int, Dict[int, list]]:
        responses: Dict[int, Dict[int, list]] = {}
        for round_messages in self.history:
            for message in round_messages:
                if message.kind != "response":
                    continue
                payload = message.payload
                complainer = payload.get("complainer")
                shares = payload.get("shares")
                if (not isinstance(complainer, int) or shares is None
                        or len(shares) != NUM_PAIRS):
                    continue
                responses.setdefault(message.sender, {})[complainer] = [
                    (int(a), int(b)) for a, b in shares]
        return responses

    def _qualified_set(self, responses) -> List[int]:
        qualified = []
        for dealer in self.dealer_indices:
            if dealer in self.disqualified:
                continue
            if dealer not in self.received_commitments:
                continue
            if not self._binding_holds(dealer):
                continue
            complainers = self.complaints_against.get(dealer, set())
            # At most t' new-committee members can be corrupt, so an
            # honest dealer draws at most t' complaints.
            if len(complainers) > self.new_t:
                continue
            ok = True
            for complainer in complainers:
                published = responses.get(dealer, {}).get(complainer)
                if published is None:
                    ok = False
                    break
                for k in range(NUM_PAIRS):
                    if not PedersenVSS.verify_share(
                            self.group, self.g_z, self.g_r,
                            self.received_commitments[dealer][k],
                            complainer, published[k]):
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                qualified.append(dealer)
        return qualified

    def _vk_component(self, dealer_set, weights, k: int,
                      j: int) -> GroupElement:
        """``prod_{i in D} prod_l W_hat_ikl^{lambda_i * j^l}`` — the new
        VK_j component.

        As in Dist-Keygen finalize, the scalar ``lambda_i * j^l``
        factors, so the double product regroups around the weighted
        column aggregates ``U_kl = prod_{i in D} W_hat_ikl^{lambda_i}``
        (independent of j, cached): every new-committee VK_j is then a
        (t'+1)-term multi-exp instead of a |D|*(t'+1)-term one.
        """
        powers = index_powers(self.group.order, j, self.new_t + 1)
        return self.group.multi_exp(
            self._weighted_columns(tuple(dealer_set), weights, k), powers)

    def _weighted_columns(self, dealer_set: tuple, weights,
                          k: int) -> List[GroupElement]:
        """``[prod_{i in D} W_hat_ikl^{lambda_i} for l in 0..t']``."""
        cached = self._column_cache.get((dealer_set, k))
        if cached is not None:
            return cached
        scalars = [weights[dealer] for dealer in dealer_set]
        columns = [
            self.group.multi_exp(
                [self.received_commitments[dealer][k][position]
                 for dealer in dealer_set],
                scalars)
            for position in range(self.new_t + 1)
        ]
        self._column_cache[(dealer_set, k)] = columns
        return columns


def run_reshare(group: BilinearGroup, g_z: GroupElement,
                g_r: GroupElement, old_t: int, new_t: int,
                new_indices: Sequence[int],
                shares: Dict[int, PrivateKeyShare],
                verification_keys: Dict[int, VerificationKey],
                public_key=None,
                adversary: Optional[Adversary] = None, rng=None,
                ) -> Tuple[Dict[int, PrivateKeyShare],
                           Dict[int, VerificationKey], object]:
    """Reshare the current (old_t, ·) sharing to a (new_t, n') committee.

    ``shares`` maps each participating current holder to its share (a
    crashed holder simply doesn't deal); ``new_indices`` is the new
    committee.  Returns ``(new_shares, new_vks, network)``; if
    ``public_key`` is given, the recombined public components are
    checked against it and a mismatch raises :class:`ProtocolError`.
    """
    new_indices = sorted(set(new_indices))
    if len(new_indices) < 2 * new_t + 1:
        raise ParameterError("the paper requires n >= 2t + 1")
    if any(j < 1 for j in new_indices):
        raise ParameterError("committee indices must be positive")
    if len(shares) < old_t + 1:
        raise ParameterError(
            "resharing needs at least t+1 current holders")
    missing = [i for i in shares if i not in verification_keys]
    if missing:
        raise ParameterError(
            f"no verification key for dealer(s) {missing} — the binding "
            "check needs every dealer's current VK")
    dealer_indices = sorted(shares)
    players = {}
    for index in sorted(set(dealer_indices) | set(new_indices)):
        players[index] = ResharePlayer(
            index, group, g_z, g_r, old_t, new_t,
            dealer_indices, new_indices, verification_keys,
            old_share=shares.get(index), rng=rng)
    network = SyncNetwork(players, adversary=adversary)
    results = network.run(NUM_ROUNDS)
    honest = [r for r in results.values() if r is not None]
    if not honest:
        raise ProtocolError("no honest player completed the reshare")
    reference = honest[0]
    for result in honest[1:]:
        if (result.qualified != reference.qualified
                or result.dealer_set != reference.dealer_set):
            raise ProtocolError(
                "honest players disagree on the qualified dealer set")
    if public_key is not None:
        if (reference.public_components[0] != public_key.g_1
                or reference.public_components[1] != public_key.g_2):
            raise ProtocolError(
                "reshare transcript does not recombine to the existing "
                "public key")
    new_shares: Dict[int, PrivateKeyShare] = {}
    for index, result in results.items():
        if result is None or result.share_pairs is None:
            continue
        new_shares[index] = PrivateKeyShare(
            index=index,
            a_1=result.share_pairs[0][0], b_1=result.share_pairs[0][1],
            a_2=result.share_pairs[1][0], b_2=result.share_pairs[1][1],
        )
    new_vks = {
        j: VerificationKey(index=j, v_1=vks[0], v_2=vks[1])
        for j, vks in reference.verification_keys.items()
    }
    return new_shares, new_vks, network
