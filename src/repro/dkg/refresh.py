"""Proactive share refresh (Section 3.3 of the paper).

At the start of each period, all players run a new instance of Pedersen's
DKG in which every dealer shares the pair ``(0, 0)`` per component — the
constant-term commitment ``W_hat_ik0`` must equal the identity, a public
check.  Each player adds the resulting "share of zero" to its current
share; the shared secret (and hence PK) is unchanged while the sharing
polynomials are re-randomized, so shares captured by a mobile adversary in
a previous period become useless.  Verification keys are updated by
multiplying in the refresh transcript's VK components.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.keys import PrivateKeyShare, VerificationKey
from repro.dkg.pedersen_dkg import run_pedersen_dkg
from repro.errors import ProtocolError
from repro.groups.api import BilinearGroup, GroupElement
from repro.net.adversary import Adversary


def run_refresh(group: BilinearGroup, g_z: GroupElement, g_r: GroupElement,
                t: int, n: int,
                shares: Dict[int, PrivateKeyShare],
                verification_keys: Dict[int, VerificationKey],
                adversary: Optional[Adversary] = None, rng=None,
                ) -> Tuple[Dict[int, PrivateKeyShare],
                           Dict[int, VerificationKey], object]:
    """One refresh period: returns (new_shares, new_vks, network).

    ``shares`` maps honest player indices to their current shares; players
    missing from the map (e.g. previously crashed ones) are skipped — the
    share-recovery procedure of Herzberg et al. is a separate concern
    handled by :func:`recover_share`.
    """
    results, network = run_pedersen_dkg(
        group, g_z, g_r, t, n, num_pairs=2, adversary=adversary,
        fixed_secrets=[(0, 0), (0, 0)], require_zero_constant=True, rng=rng)
    new_shares: Dict[int, PrivateKeyShare] = {}
    new_vks: Dict[int, VerificationKey] = {}
    reference = None
    for index, result in results.items():
        if index not in shares:
            continue
        delta = PrivateKeyShare(
            index=index,
            a_1=result.share_pairs[0][0], b_1=result.share_pairs[0][1],
            a_2=result.share_pairs[1][0], b_2=result.share_pairs[1][1],
        )
        new_shares[index] = (shares[index] + delta).reduce(group.order)
        reference = result if reference is None else reference
    if reference is None:
        raise ProtocolError("no honest player completed the refresh")
    for j, old_vk in verification_keys.items():
        delta_vks = reference.verification_keys[j]
        new_vks[j] = VerificationKey(
            index=j,
            v_1=old_vk.v_1 * delta_vks[0],
            v_2=old_vk.v_2 * delta_vks[1],
        )
    return new_shares, new_vks, network


def recover_share(scheme, index: int,
                  helper_shares: Dict[int, PrivateKeyShare]
                  ) -> PrivateKeyShare:
    """Restore a lost/corrupted share from t+1 helpers (Herzberg et al.).

    The paper points to [46, Section 4] for detecting and restoring
    corrupted shares.  We implement the direct variant: t+1 helpers
    interpolate the four sharing polynomials *at the victim's index* — not
    at 0 — so the master key is never reconstructed anywhere.  (In a real
    deployment the helpers would use blinded sub-sharings; the interpolation
    arithmetic is identical.)
    """
    from repro.math.lagrange import lagrange_coefficients
    order = scheme.group.order
    helpers = list(helper_shares.values())[: scheme.params.t + 1]
    coefficients = lagrange_coefficients(
        [s.index for s in helpers], order, x=index)
    totals = [0, 0, 0, 0]
    for share in helpers:
        weight = coefficients[share.index]
        totals[0] = (totals[0] + weight * share.a_1) % order
        totals[1] = (totals[1] + weight * share.b_1) % order
        totals[2] = (totals[2] + weight * share.a_2) % order
        totals[3] = (totals[3] + weight * share.b_2) % order
    return PrivateKeyShare(index, *totals)
