"""The Gennaro-Jarecki-Krawczyk-Rabin "new-DKG" baseline.

The paper's Section 1 contrasts Pedersen's DKG (one optimistic round, but a
biasable public key) with the GJKR protocol (uniform public key, extra
extraction phase).  We implement GJKR to measure that cost difference
(experiment T4) and to demonstrate that the bias attack of
:mod:`repro.security.attacks` fails against it.

Structure (single shared scalar a, masking scalar b):

* Rounds 0-2: exactly Pedersen's DKG — deal with Pedersen commitments
  ``C_l = g_z^{a_l} g_r^{b_l}``, complain, respond.  This fixes the
  qualified set Q **before** anything about the public key is revealed.
* Round 3 (extraction): each dealer in Q broadcasts Feldman commitments
  ``A_l = g_z^{a_l}`` to its a-polynomial alone.
* Round 4 (extraction complaints): players whose share fails the Feldman
  check broadcast their (publicly verifiable) share pair as evidence.
* Round 5 (reconstruction): on a valid extraction complaint against dealer
  j, every player broadcasts its share of dealer j so that a_j0 can be
  interpolated publicly.  Dealer j *stays in Q* — its contribution is
  reconstructed, which is the crucial difference that kills the bias
  attack (an attacker cannot remove its contribution after seeing others').

The public key is ``y = g_z^{sum_{j in Q} a_j0}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError, ProtocolError
from repro.groups.api import BilinearGroup, GroupElement
from repro.math.lagrange import interpolate_at
from repro.net.adversary import Adversary
from repro.net.player import Player
from repro.net.simulator import Message, SyncNetwork, broadcast, private
from repro.sharing.pedersen_vss import PedersenVSS, commitment_eval
from repro.sharing.shamir import validate_threshold

NUM_ROUNDS = 6


@dataclass
class GJKRResult:
    index: int
    qualified: List[int]
    share: int                      # x_i = sum_{j in Q} A_j(i)
    public_key: GroupElement        # y = g_z^{x}
    verification_keys: Dict[int, GroupElement]


class GJKRPlayer(Player):
    """An honest participant of the GJKR new-DKG."""

    def __init__(self, index: int, group: BilinearGroup,
                 g_z: GroupElement, g_r: GroupElement, t: int, n: int,
                 rng=None):
        super().__init__(index)
        validate_threshold(t, n)
        if n < 2 * t + 1:
            raise ParameterError("GJKR requires n >= 2t + 1")
        self.group = group
        self.g_z = g_z
        self.g_r = g_r
        self.t = t
        self.n = n
        self.rng = rng
        self.dealing: Optional[PedersenVSS] = None
        self.received_commitments: Dict[int, List[GroupElement]] = {}
        self.received_shares: Dict[int, Tuple[int, int]] = {}
        self.complaints_against: Dict[int, set] = {}
        self.qualified: List[int] = []
        self.feldman: Dict[int, List[GroupElement]] = {}
        self.extraction_complaints: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.reconstruction_shares: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self._result: Optional[GJKRResult] = None

    # -- rounds -----------------------------------------------------------
    def on_round(self, round_no: int,
                 inbox: Sequence[Message]) -> List[Message]:
        if round_no == 0:
            return self._deal()
        if round_no == 1:
            self._ingest_dealings(inbox)
            return self._complain()
        if round_no == 2:
            self._ingest_complaints(inbox)
            return self._respond()
        if round_no == 3:
            self._finalize_qualified(inbox)
            return self._extract()
        if round_no == 4:
            self._ingest_feldman(inbox)
            return self._extraction_complain()
        if round_no == 5:
            self._ingest_extraction_complaints(inbox)
            return self._reconstruct()
        return []

    def _deal(self) -> List[Message]:
        self.dealing = PedersenVSS.deal(
            self.group, self.g_z, self.g_r, self.t, self.n, rng=self.rng)
        outbound = [broadcast(self.index, "commitments",
                              {"commitments": [self.dealing.commitments]})]
        for j in range(1, self.n + 1):
            if j != self.index:
                outbound.append(private(
                    self.index, j, "shares", [self.dealing.share_for(j)]))
        self.received_commitments[self.index] = self.dealing.commitments
        self.received_shares[self.index] = self.dealing.share_for(self.index)
        return outbound

    def _ingest_dealings(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind == "commitments":
                commitments = message.payload["commitments"][0]
                if len(commitments) == self.t + 1:
                    self.received_commitments[message.sender] = commitments
            elif message.kind == "shares" and message.recipient == self.index:
                pair = message.payload[0]
                self.received_shares[message.sender] = (
                    int(pair[0]), int(pair[1]))

    def _complain(self) -> List[Message]:
        outbound = []
        for dealer in range(1, self.n + 1):
            if dealer == self.index:
                continue
            if not self._share_ok(dealer):
                outbound.append(broadcast(
                    self.index, "complaint", {"accused": dealer}))
        return outbound

    def _share_ok(self, dealer: int) -> bool:
        commitments = self.received_commitments.get(dealer)
        share = self.received_shares.get(dealer)
        if commitments is None or share is None:
            return False
        return PedersenVSS.verify_share(
            self.group, self.g_z, self.g_r, commitments, self.index, share)

    def _ingest_complaints(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind == "complaint":
                accused = message.payload.get("accused")
                if isinstance(accused, int):
                    self.complaints_against.setdefault(accused, set()).add(
                        message.sender)

    def _respond(self) -> List[Message]:
        complainers = self.complaints_against.get(self.index, set())
        return [
            broadcast(self.index, "response", {
                "complainer": c,
                "shares": [self.dealing.share_for(c)],
            })
            for c in sorted(complainers)
        ]

    def _finalize_qualified(self, inbox: Sequence[Message]) -> None:
        responses: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for message in inbox:
            if message.kind != "response":
                continue
            payload = message.payload
            share = payload["shares"][0]
            responses.setdefault(message.sender, {})[
                payload["complainer"]] = (int(share[0]), int(share[1]))
        for dealer in range(1, self.n + 1):
            commitments = self.received_commitments.get(dealer)
            if commitments is None:
                continue
            complainers = self.complaints_against.get(dealer, set())
            if len(complainers) > self.t:
                continue
            ok = True
            for complainer in complainers:
                published = responses.get(dealer, {}).get(complainer)
                if published is None or not PedersenVSS.verify_share(
                        self.group, self.g_z, self.g_r, commitments,
                        complainer, published):
                    ok = False
                    break
                if complainer == self.index:
                    self.received_shares[dealer] = published
            if ok:
                self.qualified.append(dealer)

    def _extract(self) -> List[Message]:
        """Broadcast Feldman commitments g_z^{a_l} (extraction phase)."""
        if self.index not in self.qualified:
            return []
        feldman = [
            self.g_z ** coeff for coeff in self.dealing.poly_a.coeffs]
        return [broadcast(self.index, "feldman", {"feldman": feldman})]

    def _ingest_feldman(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind == "feldman":
                feldman = message.payload["feldman"]
                if len(feldman) == self.t + 1:
                    self.feldman[message.sender] = feldman

    def _extraction_complain(self) -> List[Message]:
        """Publish our share pair against dealers failing the Feldman check."""
        outbound = []
        for dealer in self.qualified:
            if dealer == self.index:
                continue
            share = self.received_shares.get(dealer)
            feldman = self.feldman.get(dealer)
            bad = (
                feldman is None
                or self.g_z ** share[0] != commitment_eval(
                    self.group, feldman, self.index))
            if bad:
                outbound.append(broadcast(
                    self.index, "x-complaint",
                    {"accused": dealer, "share": share}))
        return outbound

    def _ingest_extraction_complaints(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind != "x-complaint":
                continue
            accused = message.payload["accused"]
            share = message.payload["share"]
            if accused not in self.qualified:
                continue
            commitments = self.received_commitments[accused]
            # Only *valid* complaints (share matches the Pedersen
            # commitment but not the Feldman one) trigger reconstruction.
            share = (int(share[0]), int(share[1]))
            pedersen_ok = PedersenVSS.verify_share(
                self.group, self.g_z, self.g_r, commitments,
                message.sender, share)
            feldman = self.feldman.get(accused)
            feldman_ok = feldman is not None and (
                self.g_z ** share[0] == commitment_eval(
                    self.group, feldman, message.sender))
            if pedersen_ok and not feldman_ok:
                self.extraction_complaints.setdefault(accused, {})[
                    message.sender] = share

    def _reconstruct(self) -> List[Message]:
        """Everyone publishes its shares of dealers under reconstruction."""
        outbound = []
        for dealer in sorted(self.extraction_complaints):
            share = self.received_shares.get(dealer)
            if share is not None:
                outbound.append(broadcast(
                    self.index, "reconstruct",
                    {"dealer": dealer, "share": share}))
        return outbound

    # -- output --------------------------------------------------------------
    def finalize(self) -> GJKRResult:
        if self._result is not None:
            return self._result
        # Collect reconstruction shares from the final delivery.
        for round_messages in self.history:
            for message in round_messages:
                if message.kind != "reconstruct":
                    continue
                dealer = message.payload["dealer"]
                share = message.payload["share"]
                share = (int(share[0]), int(share[1]))
                if dealer not in self.extraction_complaints:
                    continue
                if PedersenVSS.verify_share(
                        self.group, self.g_z, self.g_r,
                        self.received_commitments[dealer],
                        message.sender, share):
                    self.reconstruction_shares.setdefault(dealer, {})[
                        message.sender] = share
        public_key = None
        for dealer in self.qualified:
            if dealer in self.extraction_complaints:
                points = {
                    sender: pair[0]
                    for sender, pair in self.reconstruction_shares.get(
                        dealer, {}).items()
                }
                if len(points) < self.t + 1:
                    raise ProtocolError(
                        f"cannot reconstruct dealer {dealer}'s contribution")
                a_0 = interpolate_at(points, self.group.order, x=0)
                contribution = self.g_z ** a_0
            else:
                contribution = self.feldman[dealer][0]
            public_key = (contribution if public_key is None
                          else public_key * contribution)
        share = sum(
            self.received_shares[j][0] for j in self.qualified
        ) % self.group.order
        verification_keys = {}
        for j in range(1, self.n + 1):
            vk = None
            for dealer in self.qualified:
                feldman = self.feldman.get(dealer)
                if feldman is None:
                    continue
                term = commitment_eval(self.group, feldman, j)
                vk = term if vk is None else vk * term
            verification_keys[j] = vk
        self._result = GJKRResult(
            index=self.index,
            qualified=sorted(self.qualified),
            share=share,
            public_key=public_key,
            verification_keys=verification_keys,
        )
        return self._result


def run_gjkr_dkg(group: BilinearGroup, g_z: GroupElement,
                 g_r: GroupElement, t: int, n: int,
                 adversary: Optional[Adversary] = None, rng=None):
    """Run the GJKR new-DKG; returns (results_by_player, network)."""
    players = {
        i: GJKRPlayer(i, group, g_z, g_r, t, n, rng=rng)
        for i in range(1, n + 1)
    }
    network = SyncNetwork(players, adversary=adversary)
    results = network.run(NUM_ROUNDS)
    return results, network
