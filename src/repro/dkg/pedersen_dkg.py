"""Pedersen's distributed key generation — the paper's Dist-Keygen.

Protocol (Section 3.1), for each player P_i and each component k:

1. **Deal.** P_i picks degree-t polynomials A_ik[X], B_ik[X], broadcasts
   the Pedersen commitments ``W_hat_ikl = g_z^{a_ikl} g_r^{b_ikl}`` and
   privately sends ``(A_ik(j), B_ik(j))`` to every P_j.
2. **Complain.** P_i checks every received share against equation (1) and
   broadcasts a complaint for each faulty dealer.
3. **Respond.** A dealer with more than t complaints is disqualified.  A
   dealer with 1..t complaints must broadcast the complained-about shares;
   if a published share fails equation (1) the dealer is disqualified.
4. **Finalize.** Q = non-disqualified players.  The public key components
   are ``g_hat_k = prod_{i in Q} W_hat_ik0``; player j's private share is
   the sum of the qualified dealers' shares; every VK_j is publicly
   computable from the broadcast commitments.

In the optimistic case rounds 2 and 3 carry no messages, so the protocol
uses **one communication round**, which is the paper's headline DKG claim.

The implementation is generic over the number of shared pairs
(``num_pairs = 2`` for the Section 3 scheme, ``1`` for Section 4) and can
share fixed constants (pairs of zeros) for proactive refresh.  A hook lets
the aggregation variant (Appendix G) broadcast its extra ``(Z_i0, R_i0)``
elements and apply its extra disqualification rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError, ProtocolError
from repro.groups.api import BilinearGroup, GroupElement
from repro.net.adversary import Adversary
from repro.net.player import Player
from repro.net.simulator import Message, SyncNetwork, broadcast, private
from repro.sharing.pedersen_vss import (
    PedersenVSS, commitment_eval, index_powers,
)
from repro.sharing.shamir import validate_threshold

#: Round layout.
ROUND_DEAL = 0
ROUND_COMPLAIN = 1
ROUND_RESPOND = 2
NUM_ROUNDS = 3


@dataclass
class DKGResult:
    """One player's view of the protocol outcome."""

    index: int
    qualified: List[int]
    #: Per component k: this player's summed share pair (A_k(i), B_k(i)).
    share_pairs: List[Tuple[int, int]]
    #: Per component k: the public key element g_hat_k.
    public_components: List[GroupElement]
    #: j -> per-component verification keys, derived from the transcript.
    verification_keys: Dict[int, List[GroupElement]]
    #: This player's own additive contribution pairs (a_ik0, b_ik0).
    additive_pairs: List[Tuple[int, int]]
    #: Extra broadcast data per qualified dealer (used by Appendix G).
    extras: Dict[int, object] = field(default_factory=dict)


class PedersenDKGPlayer(Player):
    """An honest Dist-Keygen participant."""

    def __init__(self, index: int, group: BilinearGroup,
                 g_z: GroupElement, g_r: GroupElement, t: int, n: int,
                 num_pairs: int = 2,
                 fixed_secrets: Optional[Sequence[Tuple[int, int]]] = None,
                 require_zero_constant: bool = False,
                 rng=None):
        super().__init__(index)
        validate_threshold(t, n)
        if n < 2 * t + 1:
            raise ParameterError("the paper requires n >= 2t + 1")
        self.group = group
        self.g_z = g_z
        self.g_r = g_r
        self.t = t
        self.n = n
        self.num_pairs = num_pairs
        self.rng = rng
        self._fixed_secrets = fixed_secrets
        #: Proactive-refresh mode: dealings must share the pair (0, 0),
        #: publicly checkable as W_hat_ik0 == 1.
        self.require_zero_constant = require_zero_constant
        # Erasure-free model: everything below stays in the object.
        self.dealings: List[PedersenVSS] = []
        self.received_commitments: Dict[int, List[List[GroupElement]]] = {}
        self.received_shares: Dict[int, List[Tuple[int, int]]] = {}
        self.received_extras: Dict[int, object] = {}
        self.complaints_against: Dict[int, set] = {}
        self.my_complaints: List[int] = []
        self.disqualified: set = set()
        self._result: Optional[DKGResult] = None
        self._column_cache: Dict[tuple, List[GroupElement]] = {}

    # -- Appendix G hook -------------------------------------------------------
    def extra_broadcast_payload(self):
        """Extra data to broadcast with the dealing (None by default)."""
        return None

    def validate_extra(self, dealer: int, commitments, extra) -> bool:
        """Extra disqualification rule applied to each dealing."""
        return True

    # -- round machine ---------------------------------------------------------
    def on_round(self, round_no: int,
                 inbox: Sequence[Message]) -> List[Message]:
        if round_no == ROUND_DEAL:
            return self._deal()
        if round_no == ROUND_COMPLAIN:
            self._ingest_dealings(inbox)
            return self._complain()
        if round_no == ROUND_RESPOND:
            self._ingest_complaints(inbox)
            return self._respond()
        return []

    def _deal(self) -> List[Message]:
        outbound: List[Message] = []
        for k in range(self.num_pairs):
            secret = (self._fixed_secrets[k]
                      if self._fixed_secrets is not None else None)
            dealing = PedersenVSS.deal(
                self.group, self.g_z, self.g_r, self.t, self.n,
                secret_pair=secret, rng=self.rng)
            self.dealings.append(dealing)
        outbound.append(broadcast(
            self.index, "commitments",
            {
                "commitments": [d.commitments for d in self.dealings],
                "extra": self.extra_broadcast_payload(),
            }))
        for j in range(1, self.n + 1):
            if j == self.index:
                continue
            outbound.append(private(
                self.index, j, "shares",
                [d.share_for(j) for d in self.dealings]))
        # Deliver our own shares to ourselves directly.
        self.received_commitments[self.index] = [
            d.commitments for d in self.dealings]
        self.received_shares[self.index] = [
            d.share_for(self.index) for d in self.dealings]
        extra = self.extra_broadcast_payload()
        if extra is not None:
            self.received_extras[self.index] = extra
        return outbound

    def _ingest_dealings(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind == "commitments":
                payload = message.payload
                commitments = payload["commitments"]
                if (len(commitments) != self.num_pairs or any(
                        len(c) != self.t + 1 for c in commitments)):
                    self.disqualified.add(message.sender)
                    continue
                self.received_commitments[message.sender] = commitments
                if payload.get("extra") is not None:
                    self.received_extras[message.sender] = payload["extra"]
            elif message.kind == "shares" and message.recipient == self.index:
                shares = message.payload
                if len(shares) == self.num_pairs:
                    self.received_shares[message.sender] = [
                        (int(a), int(b)) for a, b in shares]

    def _complain(self) -> List[Message]:
        outbound: List[Message] = []
        for dealer in range(1, self.n + 1):
            if dealer == self.index:
                continue
            if not self._dealing_is_valid(dealer):
                self.my_complaints.append(dealer)
                outbound.append(broadcast(
                    self.index, "complaint", {"accused": dealer}))
        return outbound

    def _dealing_is_valid(self, dealer: int) -> bool:
        commitments = self.received_commitments.get(dealer)
        shares = self.received_shares.get(dealer)
        if commitments is None or shares is None:
            return False
        for k in range(self.num_pairs):
            if not PedersenVSS.verify_share(
                    self.group, self.g_z, self.g_r, commitments[k],
                    self.index, shares[k]):
                return False
            if not self.validate_extra(
                    dealer, commitments,
                    self.received_extras.get(dealer)):
                return False
        return True

    def _ingest_complaints(self, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.kind != "complaint":
                continue
            accused = message.payload.get("accused")
            if not isinstance(accused, int):
                continue
            self.complaints_against.setdefault(accused, set()).add(
                message.sender)

    def _respond(self) -> List[Message]:
        complainers = self.complaints_against.get(self.index, set())
        if not complainers:
            return []
        outbound = []
        for complainer in sorted(complainers):
            outbound.append(broadcast(
                self.index, "response", {
                    "complainer": complainer,
                    "shares": [
                        d.share_for(complainer) for d in self.dealings],
                }))
        return outbound

    # -- finalization ------------------------------------------------------------
    def finalize(self) -> DKGResult:
        if self._result is not None:
            return self._result
        responses = self._collect_responses()
        qualified = self._qualified_set(responses)
        # Adopt response shares published for us during the respond round.
        for dealer, by_complainer in responses.items():
            ours = by_complainer.get(self.index)
            if ours is not None and dealer in qualified:
                self.received_shares[dealer] = ours
        share_pairs = []
        public_components = []
        for k in range(self.num_pairs):
            sum_a = sum(
                self.received_shares[j][k][0] for j in qualified
            ) % self.group.order
            sum_b = sum(
                self.received_shares[j][k][1] for j in qualified
            ) % self.group.order
            share_pairs.append((sum_a, sum_b))
            component = None
            for j in qualified:
                w0 = self.received_commitments[j][k][0]
                component = w0 if component is None else component * w0
            public_components.append(component)
        verification_keys = {
            j: [
                self._vk_component(qualified, k, j)
                for k in range(self.num_pairs)
            ]
            for j in range(1, self.n + 1)
        }
        self._result = DKGResult(
            index=self.index,
            qualified=sorted(qualified),
            share_pairs=share_pairs,
            public_components=public_components,
            verification_keys=verification_keys,
            additive_pairs=[d.secret_pair for d in self.dealings],
            extras={
                j: self.received_extras[j]
                for j in qualified if j in self.received_extras
            },
        )
        return self._result

    def _collect_responses(self) -> Dict[int, Dict[int, list]]:
        """dealer -> complainer -> published shares (from round 3)."""
        responses: Dict[int, Dict[int, list]] = {}
        for round_messages in self.history:
            for message in round_messages:
                if message.kind != "response":
                    continue
                payload = message.payload
                complainer = payload.get("complainer")
                shares = payload.get("shares")
                if not isinstance(complainer, int) or shares is None:
                    continue
                if len(shares) != self.num_pairs:
                    continue
                responses.setdefault(message.sender, {})[complainer] = [
                    (int(a), int(b)) for a, b in shares]
        return responses

    def _qualified_set(self, responses) -> List[int]:
        qualified = []
        for dealer in range(1, self.n + 1):
            if dealer in self.disqualified:
                continue
            if dealer not in self.received_commitments:
                continue
            if self.require_zero_constant and any(
                    not commitments[0].is_identity()
                    for commitments in self.received_commitments[dealer]):
                # Refresh dealings must commit to (0, 0); this is a public
                # check so all honest players exclude such dealers alike.
                continue
            complainers = self.complaints_against.get(dealer, set())
            if len(complainers) > self.t:
                continue
            ok = True
            for complainer in complainers:
                published = responses.get(dealer, {}).get(complainer)
                if published is None:
                    ok = False
                    break
                for k in range(self.num_pairs):
                    if not PedersenVSS.verify_share(
                            self.group, self.g_z, self.g_r,
                            self.received_commitments[dealer][k],
                            complainer, published[k]):
                        ok = False
                        break
                if not ok:
                    break
            if ok and not self.validate_extra(
                    dealer, self.received_commitments[dealer],
                    self.received_extras.get(dealer)):
                ok = False
            if ok:
                qualified.append(dealer)
        return qualified

    def _vk_component(self, qualified, k: int, j: int) -> GroupElement:
        """``prod_{i in Q} prod_l W_hat_ikl^{j^l}`` — VK_j, component k.

        The same j^l scalar multiplies every dealer's l-th commitment, so
        the double product regroups as
        ``prod_l (prod_{i in Q} W_hat_ikl)^{j^l}``: the per-column
        aggregates ``U_kl`` are independent of j, get computed once per
        qualified set (cached), and each VK_j then costs a (t+1)-term
        multi-exponentiation instead of a |Q|*(t+1)-term one.  That |Q|-
        fold saving is what makes deriving all n VK rows tractable at
        n >= 1024 (the F7 simulated-DKG scenario).
        """
        if not qualified:
            return None
        powers = index_powers(self.group.order, j, self.t + 1)
        return self.group.multi_exp(
            self._commitment_columns(tuple(qualified), k), powers)

    def _commitment_columns(self, qualified: tuple,
                            k: int) -> List[GroupElement]:
        """``[prod_{i in Q} W_hat_ikl for l in 0..t]``, cached per Q."""
        cached = self._column_cache.get((qualified, k))
        if cached is not None:
            return cached
        columns: List[GroupElement] = []
        for position in range(self.t + 1):
            column = None
            for dealer in qualified:
                w = self.received_commitments[dealer][k][position]
                column = w if column is None else column * w
            columns.append(column)
        self._column_cache[(qualified, k)] = columns
        return columns


def run_pedersen_dkg(group: BilinearGroup, g_z: GroupElement,
                     g_r: GroupElement, t: int, n: int,
                     num_pairs: int = 2,
                     adversary: Optional[Adversary] = None,
                     fixed_secrets=None, require_zero_constant: bool = False,
                     rng=None, player_cls=PedersenDKGPlayer):
    """Run the full Dist-Keygen; returns (results_by_player, network).

    ``results_by_player`` maps each *honest* player index to its
    :class:`DKGResult`.  The network object carries the communication
    metrics used by experiment T4.
    """
    players = {
        i: player_cls(i, group, g_z, g_r, t, n, num_pairs=num_pairs,
                      fixed_secrets=fixed_secrets,
                      require_zero_constant=require_zero_constant, rng=rng)
        for i in range(1, n + 1)
    }
    network = SyncNetwork(players, adversary=adversary)
    results = network.run(NUM_ROUNDS)
    honest = [r for r in results.values() if r is not None]
    if honest:
        reference = honest[0]
        for result in honest[1:]:
            if result.qualified != reference.qualified:
                raise ProtocolError(
                    "honest players disagree on the qualified set")
    return results, network


def dkg_result_to_keys(scheme, result: DKGResult):
    """Convert a 2-pair DKG result into the Section 3 scheme's key types."""
    from repro.core.keys import PrivateKeyShare, PublicKey, VerificationKey
    if len(result.share_pairs) != 2:
        raise ParameterError("the Section 3 scheme shares two pairs")
    public_key = PublicKey(
        params=scheme.params,
        g_1=result.public_components[0],
        g_2=result.public_components[1],
    )
    share = PrivateKeyShare(
        index=result.index,
        a_1=result.share_pairs[0][0], b_1=result.share_pairs[0][1],
        a_2=result.share_pairs[1][0], b_2=result.share_pairs[1][1],
    )
    verification_keys = {
        j: VerificationKey(index=j, v_1=vks[0], v_2=vks[1])
        for j, vks in result.verification_keys.items()
    }
    return public_key, share, verification_keys
