"""Distributed key generation protocols.

* :mod:`repro.dkg.pedersen_dkg` — the paper's Dist-Keygen (Section 3.1):
  Pedersen's DKG with two-generator (Pedersen) VSS, complaint handling and
  disqualification.  One communication round when everyone behaves.
* :mod:`repro.dkg.gjkr_dkg` — the Gennaro-Jarecki-Krawczyk-Rabin "new-DKG"
  baseline that guarantees a uniform public key at the cost of an extra
  extraction phase; used for the DKG cost comparison (experiment T4).
* :mod:`repro.dkg.refresh` — proactive share refresh (Section 3.3):
  re-sharing zero and adding the result to current shares.
* :mod:`repro.dkg.reshare` — resharing to a new (t', n') committee
  (signer join/leave) with the public key provably unchanged.
"""

from repro.dkg.pedersen_dkg import (
    PedersenDKGPlayer, DKGResult, run_pedersen_dkg, dkg_result_to_keys,
)
from repro.dkg.gjkr_dkg import run_gjkr_dkg
from repro.dkg.refresh import recover_share, run_refresh
from repro.dkg.reshare import ResharePlayer, ReshareResult, run_reshare

__all__ = [
    "PedersenDKGPlayer", "DKGResult", "ResharePlayer", "ReshareResult",
    "dkg_result_to_keys", "recover_share", "run_gjkr_dkg",
    "run_pedersen_dkg", "run_refresh", "run_reshare",
]
