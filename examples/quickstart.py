#!/usr/bin/env python3
"""Quickstart: a fully distributed threshold signature, end to end.

Five servers jointly generate a key with Pedersen's one-round DKG (no
trusted dealer ever sees the key), then any three of them sign a message
without talking to each other; a combiner interpolates the partial
signatures and anyone verifies the 512-bit result.

The whole flow goes through :class:`repro.ServiceHandle` — the supported
entry point that bundles params, scheme and key material (and that the
async signing service in ``examples/signing_service_demo.py`` serves
over batch windows).

Run with the fast algebra backend (default) or the real BN254 pairing:

    python examples/quickstart.py
    python examples/quickstart.py --backend bn254
"""

import argparse
import time

from repro import ServiceHandle, get_group


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="toy",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (toy = fast demo)")
    parser.add_argument("-t", type=int, default=2,
                        help="threshold: t+1 servers sign, t may be corrupt")
    parser.add_argument("-n", type=int, default=5, help="number of servers")
    parser.add_argument("--message", default="hello threshold world")
    args = parser.parse_args()

    group = get_group(args.backend)
    message = args.message.encode()

    print(f"[1/4] Distributed key generation: {args.n} servers, "
          f"threshold {args.t} (backend: {args.backend})")
    start = time.time()
    handle, network = ServiceHandle.from_dkg(group, args.t, args.n)
    print(f"      done in {time.time() - start:.2f}s — "
          f"{network.metrics.communication_rounds} communication round(s), "
          f"{network.metrics.total_messages} messages, "
          f"{network.metrics.total_bytes} bytes")
    print(f"      public key: {handle.public_key.to_bytes().hex()[:32]}…")

    signer_set = handle.quorum()
    print(f"[2/4] Servers {signer_set} each sign locally "
          f"(non-interactive: no server-to-server messages)")
    partials = handle.partials_for(message, signer_set)

    print("[3/4] Combiner checks each partial signature and interpolates")
    scheme = handle.scheme
    for partial in partials:
        ok = scheme.share_verify(
            handle.public_key, handle.verification_keys[partial.index],
            message, partial)
        print(f"      share {partial.index}: "
              f"{'valid' if ok else 'INVALID'}")
    signature = scheme.combine(handle.public_key, handle.verification_keys,
                               message, partials)

    print(f"[4/4] Final signature ({signature.size_bits} bits): "
          f"{signature.to_bytes().hex()[:48]}…")
    assert handle.verify(message, signature)
    print("      verification: OK")
    assert not handle.verify(b"another message", signature)
    print("      verification of a different message: rejected (good)")


if __name__ == "__main__":
    main()
