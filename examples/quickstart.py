#!/usr/bin/env python3
"""Quickstart: a fully distributed threshold signature, end to end.

Five servers jointly generate a key with Pedersen's one-round DKG (no
trusted dealer ever sees the key), then any three of them sign a message
without talking to each other; a combiner interpolates the partial
signatures and anyone verifies the 512-bit result.

Run with the fast algebra backend (default) or the real BN254 pairing:

    python examples/quickstart.py
    python examples/quickstart.py --backend bn254
"""

import argparse
import time

from repro import (
    LJYThresholdScheme, ThresholdParams, dkg_result_to_keys, get_group,
    run_pedersen_dkg,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="toy",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (toy = fast demo)")
    parser.add_argument("-t", type=int, default=2,
                        help="threshold: t+1 servers sign, t may be corrupt")
    parser.add_argument("-n", type=int, default=5, help="number of servers")
    parser.add_argument("--message", default="hello threshold world")
    args = parser.parse_args()

    group = get_group(args.backend)
    params = ThresholdParams.generate(group, t=args.t, n=args.n)
    scheme = LJYThresholdScheme(params)
    message = args.message.encode()

    print(f"[1/4] Distributed key generation: {args.n} servers, "
          f"threshold {args.t} (backend: {args.backend})")
    start = time.time()
    results, network = run_pedersen_dkg(
        group, params.g_z, params.g_r, args.t, args.n)
    print(f"      done in {time.time() - start:.2f}s — "
          f"{network.metrics.communication_rounds} communication round(s), "
          f"{network.metrics.total_messages} messages, "
          f"{network.metrics.total_bytes} bytes")

    # Every server derives the same public key and verification keys.
    public_key, _, verification_keys = dkg_result_to_keys(
        scheme, results[1])
    shares = {
        i: dkg_result_to_keys(scheme, results[i])[1] for i in results
    }
    print(f"      public key: {public_key.to_bytes().hex()[:32]}…")

    signer_set = list(range(1, args.t + 2))
    print(f"[2/4] Servers {signer_set} each sign locally "
          f"(non-interactive: no server-to-server messages)")
    partials = [scheme.share_sign(shares[i], message) for i in signer_set]

    print("[3/4] Combiner checks each partial signature and interpolates")
    for partial in partials:
        ok = scheme.share_verify(
            public_key, verification_keys[partial.index], message, partial)
        print(f"      share {partial.index}: "
              f"{'valid' if ok else 'INVALID'}")
    signature = scheme.combine(public_key, verification_keys, message,
                               partials)

    print(f"[4/4] Final signature ({signature.size_bits} bits): "
          f"{signature.to_bytes().hex()[:48]}…")
    assert scheme.verify(public_key, message, signature)
    print("      verification: OK")
    assert not scheme.verify(public_key, b"another message", signature)
    print("      verification of a different message: rejected (good)")


if __name__ == "__main__":
    main()
