#!/usr/bin/env python3
"""A de-centralized certification authority with compressed cert chains.

The paper's Appendix G motivates aggregation with "de-centralized
certification authorities while enabling the compression of certification
chains".  This example builds a three-level CA hierarchy — root, an
intermediate, and an issuing CA — where **every** CA is itself a (t, n)
threshold committee (no single machine ever holds a CA key), then issues
an end-entity certificate and compresses the whole chain into one 512-bit
aggregate signature.

    python examples/distributed_ca.py
    python examples/distributed_ca.py --backend bn254
"""

import argparse
import json

from repro import ServiceHandle, get_group
from repro.core.aggregation import AggThresholdParams, LJYAggregateScheme


def cert_body(subject: str, issuer: str, pubkey_hex: str) -> bytes:
    return json.dumps({
        "subject": subject,
        "issuer": issuer,
        "public_key": pubkey_hex,
    }, sort_keys=True).encode()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="toy",
                        choices=["toy", "bn254"])
    args = parser.parse_args()
    group = get_group(args.backend)
    params = AggThresholdParams.generate(group, t=1, n=3)
    scheme = LJYAggregateScheme(params)

    print("[1/3] Bootstrapping three threshold CA committees (t=1, n=3)")
    committees = {}
    for name in ("root-ca", "intermediate-ca", "issuing-ca"):
        # Each committee lives behind a ServiceHandle: the facade owns
        # the quorum policy and sign/verify entry points, so issuing a
        # certificate below is one call.
        pk, shares, vks = scheme.dealer_keygen()
        assert pk.sanity_check()
        committees[name] = ServiceHandle(scheme, pk, shares, vks)
        print(f"      {name}: PK sanity check OK")

    print("[2/3] Issuing the certificate chain")
    chain = []
    root_pk = committees["root-ca"].public_key
    links = [
        ("root-ca", "root-ca"),                    # self-signed root
        ("intermediate-ca", "root-ca"),
        ("issuing-ca", "intermediate-ca"),
        ("server.example.org", "issuing-ca"),      # end entity
    ]
    for subject, issuer in links:
        subject_pk = (committees[subject].public_key.to_bytes().hex()[:24]
                      if subject in committees else "ee-key")
        body = cert_body(subject, issuer, subject_pk)
        authority = committees[issuer]
        signature = authority.sign(body)
        assert authority.verify(body, signature)
        chain.append((authority.public_key, signature, body))
        print(f"      {issuer:>15} --signs--> {subject}")

    print("[3/3] Compressing the chain into one aggregate signature")
    aggregate = scheme.aggregate(chain)
    separate_bits = sum(s.size_bits for _pk, s, _b in chain)
    print(f"      {len(chain)} signatures, {separate_bits} bits total "
          f"-> {aggregate.size_bits} bits "
          f"({separate_bits // aggregate.size_bits}x compression)")

    statements = [(pk, body) for pk, _sig, body in chain]
    assert scheme.aggregate_verify(statements, aggregate)
    print("      aggregate verification: OK")

    tampered = list(statements)
    tampered[-1] = (root_pk, cert_body("evil.example.org", "issuing-ca",
                                       "ee-key"))
    assert not scheme.aggregate_verify(tampered, aggregate)
    print("      tampered chain: rejected (good)")


if __name__ == "__main__":
    main()
