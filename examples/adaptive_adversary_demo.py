#!/usr/bin/env python3
"""Adaptive-adversary experiments: the bias attack and the security game.

Two demonstrations straight out of the paper's discussion:

1. **Pedersen DKG bias** — a rushing adversary corrupting c players makes
   a balanced predicate of the public key true with probability about
   1 - 2^(-2^c) instead of 1/2, by conditionally withholding its
   dealings.  The GJKR new-DKG resists (contributions get reconstructed).
2. **Why the paper can live with the bias** — the Definition 1 adaptive
   chosen-message game is run against the DKG-generated (biasable) keys;
   every below-threshold strategy still loses.

    python examples/adaptive_adversary_demo.py --trials 100
"""

import argparse
import random

from repro import LJYThresholdScheme, ThresholdParams, get_group
from repro.security.attacks import (
    gjkr_bias_experiment, honest_pedersen_baseline,
    pedersen_bias_experiment,
)
from repro.security.games import (
    AdaptiveChosenMessageGame, BelowThresholdAdversary,
    LagrangeForgeryAdversary, MauledSignatureAdversary,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    group = get_group("toy")
    rng = random.Random(args.seed)
    t, n = 1, 4

    print(f"=== 1. Public-key bias on Pedersen's DKG "
          f"(t={t}, n={n}, {args.trials} trials) ===")
    honest = honest_pedersen_baseline(group, t, n, args.trials, rng=rng)
    print(f"honest protocol:            predicate rate "
          f"{honest.success_rate:5.1%}   (expected ~50.0%)")
    for corrupted in (1, 2):
        result = pedersen_bias_experiment(
            group, t, n, args.trials, num_corrupted=corrupted, rng=rng)
        expected = 1 - 0.5 ** (2 ** corrupted)
        print(f"rushing attack, c={corrupted}:        predicate rate "
              f"{result.success_rate:5.1%}   (expected ~{expected:.1%})")
    gjkr = gjkr_bias_experiment(group, t, n, args.trials,
                                num_corrupted=2, rng=rng)
    print(f"GJKR new-DKG, c=2 dropout:  predicate rate "
          f"{gjkr.success_rate:5.1%}   (expected ~50.0% — immune)")

    print("\n=== 2. Definition 1 game on DKG-generated keys ===")
    params = ThresholdParams.generate(group, t=2, n=5)
    scheme = LJYThresholdScheme(params)
    strategies = [
        ("interpolate from t corruptions", BelowThresholdAdversary()),
        ("t signing queries on M* itself", LagrangeForgeryAdversary()),
        ("replay signature on another M", MauledSignatureAdversary()),
    ]
    for name, adversary in strategies:
        game = AdaptiveChosenMessageGame(scheme, rng=rng, use_dkg=True)
        result = game.play(adversary)
        verdict = "WON (bug!)" if result.won else f"lost ({result.reason})"
        print(f"{name:35s} -> {verdict}")
        assert not result.won

    print("\nConclusion: the DKG's key distribution is biasable, and the "
          "scheme is adaptively\nsecure anyway — exactly the paper's "
          "headline result (Theorem 1).")


if __name__ == "__main__":
    main()
