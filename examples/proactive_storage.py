#!/usr/bin/env python3
"""Proactively secure distributed-storage authorization (OceanStore-like).

The paper cites global-scale storage systems as a motivating application
of threshold signatures.  This example runs a storage cluster whose write
capabilities are authorized by a (2, 5) threshold committee, across three
epochs:

* each epoch, clients obtain threshold-signed write capabilities;
* between epochs the committee proactively refreshes its shares
  (Section 3.3) — the public key never changes, so old capabilities stay
  verifiable;
* a *mobile* adversary corrupts two different servers per epoch (six
  corruptions total, far above the threshold), yet its collection of
  stale shares never lets it forge a capability.

    python examples/proactive_storage.py
"""

import argparse
import itertools

from repro import (
    LJYThresholdScheme, ThresholdParams, get_group, run_refresh,
)
from repro.core.scheme import reconstruct_master_key


def authorize(scheme, pk, shares, vks, capability: bytes):
    signers = list(shares)[: scheme.params.t + 1]
    partials = [scheme.share_sign(shares[i], capability) for i in signers]
    return scheme.combine(pk, vks, capability, partials)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="toy",
                        choices=["toy", "bn254"])
    parser.add_argument("--epochs", type=int, default=3)
    args = parser.parse_args()

    group = get_group(args.backend)
    t, n = 2, 5
    params = ThresholdParams.generate(group, t=t, n=n)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen()
    true_master = reconstruct_master_key(
        list(shares.values()), group.order, t)

    print(f"[setup] storage authorization committee: t={t}, n={n}")
    stolen = []
    victims_cycle = itertools.cycle([(1, 2), (3, 4), (5, 2)])
    capabilities = []

    for epoch in range(1, args.epochs + 1):
        print(f"\n=== epoch {epoch} ===")
        capability = f"WRITE block-{epoch:04d} by client-7".encode()
        signature = authorize(scheme, pk, shares, vks, capability)
        assert scheme.verify(pk, capability, signature)
        capabilities.append((capability, signature))
        print(f"[authorize] {capability.decode()!r}: capability issued "
              f"({signature.size_bits} bits)")

        victims = next(victims_cycle)
        stolen.extend(shares[v] for v in victims)
        print(f"[attack]    mobile adversary corrupts servers {victims} "
              f"(erasure-free: full state captured; "
              f"{len(stolen)} shares total)")

        recovered = False
        for subset in itertools.combinations(stolen, t + 1):
            if len({s.index for s in subset}) < t + 1:
                continue
            if reconstruct_master_key(
                    list(subset), group.order, t) == true_master:
                recovered = True
        print(f"[attack]    master key recovered from stolen shares: "
              f"{recovered}")
        assert not recovered, "proactive security failed!"

        shares, vks, network = run_refresh(
            group, params.g_z, params.g_r, t, n, shares, vks)
        print(f"[refresh]   shares re-randomized in "
              f"{network.metrics.communication_rounds} round(s); "
              f"public key unchanged")

    print("\n[audit] all historical capabilities still verify:")
    for capability, signature in capabilities:
        assert scheme.verify(pk, capability, signature)
        print(f"        {capability.decode()!r}: OK")
    print("\nThe adversary held", len(stolen),
          "shares overall (>> t), never more than", t,
          "fresh ones per epoch — the key survived.")


if __name__ == "__main__":
    main()
