#!/usr/bin/env python3
"""The async threshold-signing service, end to end.

Boots a sharded signing service over a (t, n) committee, then runs three
acts:

1. **Closed-loop signing** — 16 virtual clients hammer the service; the
   batch accumulator closes windows of up to 16 requests and each window
   pays ONE cross-message batch check instead of one verification per
   request.
2. **Open-loop verification** — Poisson arrivals at a configurable rate;
   verify traffic amortizes even harder (a window of k signatures costs
   one multi-pairing).
3. **Fault injection** — one signer starts forging its partial
   signatures.  The window check fails, ``locate_invalid`` bisects to
   the poisoned requests, and they are recombined through the robust
   per-share path — every request still completes with a valid
   signature.

``--refresh-every N`` exercises the live key lifecycle: a proactive
share refresh fires after every N completed sign requests *while the
load is running* — the service drains in-flight windows behind the
epoch barrier, swaps shares, and resumes with zero rejections and an
unchanged public key.  ``--reshare`` then rotates one signer out and a
fresh one in via live resharing (join/leave, same public key).

``--http`` fronts the service with the HTTP gateway and routes the
sign/verify load over loopback HTTP — API-key tenant admission, hex
JSON bodies, keep-alive connections, a Prometheus ``/metrics`` scrape
at the end (spec: ``docs/HTTP_API.md``).

    python examples/signing_service_demo.py
    python examples/signing_service_demo.py --backend bn254 --requests 32
    python examples/signing_service_demo.py --refresh-every 16 --reshare
    python examples/signing_service_demo.py --http
"""

import argparse
import asyncio
import pathlib
import random

from repro import ServiceHandle, get_group
from repro.service import (
    CorruptSignerFault, GatewayClient, HttpGateway, LoadGenerator,
    ServiceConfig, SigningService, TenantConfig,
)


async def demo(args) -> None:
    if args.context is not None:
        # Multi-machine mode: load the same provisioned context the
        # remote workers serve (the HELLO handshake enforces the match).
        from repro.serialization import decode_service_context
        handle = decode_service_context(args.context.read_bytes())
        params = handle.scheme.params
        print(f"[1/4] Loaded service context from {args.context}: "
              f"t={params.t}, n={params.n} "
              f"(backend: {handle.scheme.group.name})")
    else:
        group = get_group(args.backend)
        print(f"[1/4] Dealer keygen: t={args.t}, n={args.n} "
              f"(backend: {args.backend})")
        handle = ServiceHandle.dealer(group, args.t, args.n,
                                      rng=random.Random(1))

    remote_workers = tuple(
        address for address in (args.remote_workers or "").split(",")
        if address)
    config = ServiceConfig(num_shards=args.shards, max_batch=16,
                           max_wait_ms=10.0, workers=args.workers,
                           remote_workers=remote_workers,
                           pipeline_depth=args.pipeline_depth,
                           remote_psk=args.psk,
                           rng=random.Random(2))
    if remote_workers:
        tier = f"remote TCP workers {', '.join(remote_workers)}"
        if args.pipeline_depth > 1:
            tier += (f", pipelined {args.pipeline_depth} deep "
                     f"(workers accumulate the windows)")
    elif args.workers:
        tier = f"{args.workers} worker process(es)"
    else:
        tier = "in-process"
    print(f"[2/4] Closed-loop signing: {args.requests} requests, "
          f"16 clients, {args.shards} shard(s), window 16, {tier}")
    gateway = client = None
    async with SigningService(handle, config) as service:
        if args.http:
            # Front the service with the HTTP gateway and route every
            # data-plane call over a real loopback socket — hex JSON
            # bodies, API-key tenant admission, keep-alive connections.
            from repro.serialization import WireCodec
            gateway = HttpGateway(service, tenants=[
                TenantConfig(name="demo", api_key="demo-key",
                             admin=True)])
            await gateway.start()
            client = GatewayClient(
                gateway.host, gateway.port, "demo-key",
                codec=WireCodec(handle.scheme.group))
            print(f"      HTTP gateway on http://{gateway.host}:"
                  f"{gateway.port} — tenant 'demo' "
                  f"(X-API-Key: demo-key)")
        sign_op = client.sign if client else service.sign
        verify_op = client.verify if client else service.verify
        generator = LoadGenerator(
            lambda i: sign_op(b"demo message %d" % i))
        refresher = None
        if args.refresh_every:
            async def refresh_loop():
                # Fire a live refresh each time another N requests have
                # completed; the barrier drains in-flight windows, so
                # the load never sees a rejection.
                transitions = 0
                while True:
                    target = (transitions + 1) * args.refresh_every
                    while service.stats.completed < target:
                        await asyncio.sleep(0.005)
                    pause = await service.refresh(
                        rng=random.Random(100 + transitions))
                    transitions += 1
                    print(f"      refresh -> epoch "
                          f"{service.handle.epoch} (paused "
                          f"{pause:.2f} ms, zero rejections)")
            refresher = asyncio.ensure_future(refresh_loop())
        report = await generator.run_closed(args.requests, 16)
        if refresher is not None:
            refresher.cancel()
        stats = service.snapshot_stats()
        windows = sum(s.windows for s in stats.shards.values())
        print(f"      {report.completed} signed, 0 rejected | "
              f"{report.throughput_rps:.0f} req/s | "
              f"p50 {report.p50_ms:.1f} ms, p99 {report.p99_ms:.1f} ms")
        print(f"      {windows} batch windows for {report.completed} "
              f"requests (mean batch "
              f"{stats.summary()['mean_batch']:.1f}) — each window paid "
              f"one batch check")
        if args.refresh_every:
            print(f"      {stats.epochs.transitions} live refresh(es), "
                  f"pause p99 {stats.epochs.pause_p99_ms:.2f} ms — "
                  f"public key unchanged")
        if args.reshare:
            current = sorted(service.handle.shares)
            leaver, joiner = current[0], max(current) + 1
            new_indices = sorted(set(current) - {leaver} | {joiner})
            pause = await service.reshare(
                service.handle.scheme.params.t, new_indices,
                rng=random.Random(200))
            result = await sign_op(b"post-reshare doc")
            assert handle.verify(result.message, result.signature)
            print(f"      reshare -> epoch {service.handle.epoch}: "
                  f"signer {leaver} out, {joiner} in (paused "
                  f"{pause:.2f} ms); post-reshare signature verifies "
                  f"under the unchanged public key")

        print(f"[3/4] Open-loop verification: Poisson arrivals at "
              f"{args.rate} req/s")
        signatures = {}

        async def sign_and_stash(ordinal):
            result = await sign_op(b"verified doc %d" % ordinal)
            signatures[ordinal] = result
            return result

        await LoadGenerator(sign_and_stash).run_closed(args.requests, 16)
        verifier = LoadGenerator(
            lambda i: verify_op(signatures[i].message,
                                signatures[i].signature),
            rng=random.Random(3))
        report = await verifier.run_open(args.requests, args.rate)
        print(f"      {report.completed} verified, "
              f"{report.invalid} invalid | p50 {report.p50_ms:.1f} ms, "
              f"p99 {report.p99_ms:.1f} ms")
        if args.workers or remote_workers:
            stats = service.snapshot_stats()
            what = "remote workers" if remote_workers else "processes"
            print(f"      worker pool: {stats.workers.jobs} window jobs "
                  f"over {stats.workers.workers} {what}, "
                  f"{stats.workers.crashes} crashes, "
                  f"{stats.workers.reconnects} reconnects")
            if remote_workers and args.pipeline_depth > 1:
                print(f"      pipelining: up to "
                      f"{stats.workers.max_inflight} requests in flight "
                      f"per connection (depth {args.pipeline_depth})")
        if client is not None:
            exposition = await client.metrics()
            samples = [line for line in exposition.splitlines()
                       if line and not line.startswith("#")]
            print(f"      /metrics: {len(samples)} Prometheus samples "
                  f"(ljy_gateway_*, ljy_tenant_*, ljy_service_*, ...)")
            await client.close()
            await gateway.stop()

    fault = CorruptSignerFault(signer_index=1)
    print("[4/4] Fault injection: signer 1 forges every partial "
          "signature it produces")
    faulty_config = ServiceConfig(num_shards=1, max_batch=8,
                                  max_wait_ms=10.0, fault_injector=fault,
                                  rng=random.Random(4))
    async with SigningService(handle, faulty_config) as service:
        generator = LoadGenerator(
            lambda i: service.sign(b"contested doc %d" % i))
        report = await generator.run_closed(8, 8)
        stats = service.snapshot_stats()
    shard = stats.shards[0]
    print(f"      {report.completed}/8 requests completed despite "
          f"{len(fault.injected)} forged partials")
    print(f"      forgeries localized: {shard.faults_localized}, "
          f"robust fallback combines: {shard.fallback_combines}")
    assert report.completed == 8 and report.failed == 0
    print("      all signatures valid: OK")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="toy",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (toy = fast demo)")
    parser.add_argument("-t", type=int, default=2)
    parser.add_argument("-n", type=int, default=5)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the window crypto "
                        "(0 = in-process; N = process-parallel tier, "
                        "try N = your core count with --backend bn254)")
    parser.add_argument("--remote-workers", default=None,
                        metavar="HOST:PORT[,HOST:PORT...]",
                        help="TCP tier: comma-separated addresses of "
                        "running remote workers (python -m "
                        "repro.service.remote_worker); combine with "
                        "--context so both ends hold the same keys")
    parser.add_argument("--pipeline-depth", type=int, default=1,
                        metavar="N",
                        help="in-flight requests per remote-worker "
                        "connection (wire v2; N > 1 ships individual "
                        "requests and lets the workers accumulate the "
                        "batch windows; default 1 = window shipping)")
    parser.add_argument("--psk", default=None, metavar="KEY",
                        help="pre-shared key for the remote-worker "
                        "handshake (must match the workers' --psk; "
                        "default: none)")
    parser.add_argument("--context", type=pathlib.Path, default=None,
                        help="load the ServiceHandle from an encoded "
                        "service context instead of dealer keygen (see "
                        "remote_worker --write-context)")
    parser.add_argument("--refresh-every", type=int, default=0,
                        metavar="N",
                        help="fire a live proactive share refresh after "
                        "every N completed sign requests (0 = never); "
                        "the service keeps serving through each epoch "
                        "transition and the public key never changes")
    parser.add_argument("--reshare", action="store_true",
                        help="after the closed-loop act, rotate one "
                        "signer out and a fresh one in via live "
                        "resharing (join/leave, same public key)")
    parser.add_argument("--http", action="store_true",
                        help="front the service with the HTTP gateway "
                        "and route the sign/verify load over loopback "
                        "HTTP (API-key tenant, hex JSON bodies, "
                        "Prometheus /metrics)")
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="open-loop arrival rate (requests/second)")
    args = parser.parse_args()
    asyncio.run(demo(args))


if __name__ == "__main__":
    main()
